//! Simulated-annealing placement.
//!
//! Cells are classified by their dominant resource (CLB / DSP / BRAM / IO)
//! and sized in tile-equivalents; a cell's footprint is a vertical window of
//! tiles in one column of the matching kind. Annealing minimizes
//! wire-weighted half-perimeter wirelength plus a quadratic over-density
//! penalty, so heavily connected logic clusters — the congestion hot spots
//! the prediction model must learn — emerge naturally.
//!
//! # The placement kernels
//!
//! Two kernels share one move generator, temperature schedule, and cost
//! model (they draw the identical RNG stream), and differ only in how the
//! wirelength delta of a move is evaluated and where annealing starts:
//!
//! * [`PlaceKernel::DeltaAnneal`] (the default) keeps a cached bounding box
//!   per net with boundary-occupancy counts, so a move's wirelength delta is
//!   O(1) per incident net except when the moved cell was alone on a box
//!   boundary (then that net's box is rescanned — O(degree), bounded by
//!   [`MAX_NET_DEGREE`] and counted in [`PlaceStats::bbox_recomputes`]).
//!   Annealing starts from an analytic wirelength-driven placement: damped
//!   Jacobi iterations pull each cell toward the centroid of its nets
//!   (I/O pads act as fixed anchors), then a per-class legalization snaps
//!   cells into matching columns in desired-(x, y) order.
//! * [`PlaceKernel::ReferenceAnneal`] is the pre-rewrite kernel: full HPWL
//!   recomputation over every incident net twice per move, starting from
//!   the connectivity-ordered column snake. Kept as the reference for
//!   differential tests and old-vs-new benchmarks, the same playbook as
//!   `MazeKernel::ReferenceDijkstra` and `GbrtKernel::ReferenceExact`.
//!
//! Both kernels use the **exact overlap-aware density delta**: when a
//! move's old and new footprints share tiles (the common case for
//! range-limited late-annealing moves in the same column), the shared rows
//! cancel instead of being double-counted. The pre-rewrite placer evaluated
//! the new footprint against pre-removal loads ("treat approximately"),
//! which let the incrementally-maintained density total drift away from the
//! true cost; the incremental totals now match a from-scratch recompute to
//! float accuracy, and debug builds assert it.

use crate::device::{ColumnKind, Device};
use hls_synth::{CellKind, RtlDesign};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which annealing kernel [`place`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaceKernel {
    /// Cached per-net bounding boxes with O(1) amortized wirelength deltas
    /// and an analytic wirelength-driven initial placement.
    #[default]
    DeltaAnneal,
    /// The pre-rewrite kernel: full per-net HPWL recomputation per move,
    /// column-snake initial placement. Kept as the differential-test
    /// reference and old-vs-new benchmark baseline.
    ReferenceAnneal,
}

impl PlaceKernel {
    /// Stable display name (used in metrics and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            PlaceKernel::DeltaAnneal => "delta",
            PlaceKernel::ReferenceAnneal => "reference",
        }
    }

    /// Parse a CLI spelling (`delta`/`delta-anneal` or
    /// `reference`/`reference-anneal`).
    pub fn parse(s: &str) -> Option<PlaceKernel> {
        match s {
            "delta" | "delta-anneal" | "delta_anneal" => Some(PlaceKernel::DeltaAnneal),
            "reference" | "reference-anneal" | "reference_anneal" => {
                Some(PlaceKernel::ReferenceAnneal)
            }
            _ => None,
        }
    }
}

/// Annealing-effort counters for one [`place`] call. Deterministic for a
/// given design, options, and seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaceStats {
    /// Moves proposed (RNG draws that produced a distinct target).
    pub proposed: u64,
    /// Moves accepted by the Metropolis criterion.
    pub accepted: u64,
    /// Full net rescans to establish a bounding box. The delta kernel
    /// counts its O(degree) fallback (the moved cell was alone on a box
    /// boundary); the reference kernel counts the two full HPWL rescans it
    /// performs per incident net on every proposal, so the two kernels'
    /// rescan effort is directly comparable.
    pub bbox_recomputes: u64,
}

impl PlaceStats {
    /// Accumulate another placement's counters into this one.
    pub fn accumulate(&mut self, other: &PlaceStats) {
        self.proposed += other.proposed;
        self.accepted += other.accepted;
        self.bbox_recomputes += other.bbox_recomputes;
    }
}

impl std::fmt::Display for PlaceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "proposed {} | accepted {} | bbox rescans {}",
            self.proposed, self.accepted, self.bbox_recomputes
        )
    }
}

/// Placement result: per-cell center tile and vertical span.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Center tile `(x, y)` of each cell.
    pub pos: Vec<(u32, u32)>,
    /// Vertical footprint in tiles (span `y .. y + span`), clamped to the
    /// device height.
    pub span: Vec<u32>,
    /// Resource class of each cell.
    pub class: Vec<ColumnKind>,
    /// Final placement cost (incrementally maintained; matches a
    /// from-scratch recompute — see [`recompute_cost`]).
    pub cost: f64,
    /// Device height the placement was made for; footprints clamp to it.
    pub height: u32,
    /// Annealing-effort counters.
    pub stats: PlaceStats,
    /// Total cost sampled at (up to) [`TRAJECTORY_SAMPLES`] evenly spaced
    /// points of the anneal — the cost-descent curve, deterministic per
    /// seed (feeds the obskit `place.cost_trajectory` histogram).
    pub cost_trajectory: Vec<f64>,
}

impl Placement {
    /// The tiles occupied by cell `i`: its vertical footprint window,
    /// clamped to the device height so every named tile exists on the
    /// device (congestion and feature extraction consume these directly).
    pub fn footprint(&self, i: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (x, y) = self.pos[i];
        let end = (y + self.span[i]).min(self.height);
        (y..end).map(move |yy| (x, yy))
    }

    /// FNV-1a checksum of every cell's position and span (golden-test
    /// anchor, mirroring `RouteResult::usage_checksum`).
    pub fn position_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u32| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (&(x, y), &s) in self.pos.iter().zip(&self.span) {
            mix(x);
            mix(y);
            mix(s);
        }
        h
    }
}

/// Placer options.
#[derive(Debug, Clone)]
pub struct PlacerOptions {
    /// RNG seed (placement is deterministic for a given seed).
    pub seed: u64,
    /// Annealing moves per movable cell.
    pub moves_per_cell: u32,
    /// Over-density penalty weight.
    pub density_weight: f64,
    /// Which annealing kernel to run.
    pub kernel: PlaceKernel,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        PlacerOptions {
            seed: 1,
            moves_per_cell: 60,
            density_weight: 48.0,
            kernel: PlaceKernel::default(),
        }
    }
}

impl PlacerOptions {
    /// Reduced effort for tests.
    pub fn fast() -> Self {
        PlacerOptions {
            moves_per_cell: 8,
            ..Self::default()
        }
    }

    /// This configuration on the given kernel.
    pub fn with_kernel(mut self, kernel: PlaceKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

/// Nets of interest to the placer: a star of cell pins with a wire weight.
#[derive(Debug, Clone)]
struct PlacerNet {
    members: Vec<u32>,
    weight: f64,
}

/// Maximum net degree considered by the incremental cost (huge control nets
/// are ignored — standard placer practice).
const MAX_NET_DEGREE: usize = 64;

/// Points at which the anneal samples its running total cost into
/// [`Placement::cost_trajectory`].
pub const TRAJECTORY_SAMPLES: u64 = 16;

/// Damped Jacobi iterations of the analytic initial placement. Each
/// iteration is O(total pins), far cheaper than annealing moves, so the
/// budget is generous: a better start is what lets the delta kernel run a
/// short cold refinement schedule.
const ANALYTIC_ITERS: usize = 24;

/// Breadth-first order over the cell/net adjacency, restricted to nets of
/// degree ≤ [`MAX_NET_DEGREE`]. Unreached cells (isolated, or only on huge
/// nets) follow in index order, so the result is always a permutation of
/// `0..n`.
fn connectivity_order(rtl: &RtlDesign, n: usize) -> Vec<usize> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for net in &rtl.nets {
        let mut members: Vec<u32> = Vec::with_capacity(net.sinks.len() + 1);
        members.push(net.driver.0);
        members.extend(net.sinks.iter().map(|s| s.0));
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 || members.len() > MAX_NET_DEGREE {
            continue;
        }
        // Star adjacency around the driver keeps the graph sparse while
        // still pulling each net's cells together in the BFS.
        let hub = members[0];
        for &m in &members[1..] {
            adj[hub as usize].push(m);
            adj[m as usize].push(hub);
        }
    }

    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        queue.push_back(root);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &m in &adj[c] {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    queue.push_back(m as usize);
                }
            }
        }
    }
    order
}

/// Everything both kernels need about the design: cell classification and
/// sizing, column pools, and the degree-bounded placer nets.
struct PlacerContext<'a> {
    device: &'a Device,
    rtl: &'a RtlDesign,
    class: Vec<ColumnKind>,
    units: Vec<f64>,
    span: Vec<u32>,
    clb_cols: Vec<u32>,
    dsp_cols: Vec<u32>,
    bram_cols: Vec<u32>,
    io_cols: Vec<u32>,
    nets: Vec<PlacerNet>,
    cell_nets: Vec<Vec<u32>>,
}

impl<'a> PlacerContext<'a> {
    fn build(rtl: &'a RtlDesign, device: &'a Device) -> Self {
        let n = rtl.cells.len();
        let mut class = Vec::with_capacity(n);
        let mut units = Vec::with_capacity(n);
        for c in &rtl.cells {
            let r = c.resources;
            let (k, u) = if matches!(c.kind, CellKind::Port) {
                (ColumnKind::Io, 1.0)
            } else if r.brams > 0 {
                (ColumnKind::Bram, r.brams as f64)
            } else if r.dsps > 0 {
                (ColumnKind::Dsp, r.dsps as f64)
            } else {
                let u = (r.luts as f64 / 8.0).max(r.ffs as f64 / 16.0).max(0.05);
                (ColumnKind::Clb, u)
            };
            class.push(k);
            units.push(u);
        }
        // Spans clamp to the device height: a degenerate cell taller than
        // the device occupies one full column, never tiles past the edge.
        let span: Vec<u32> = units
            .iter()
            .map(|u| (u.ceil() as u32).max(1).min(device.height))
            .collect();

        let mut nets: Vec<PlacerNet> = Vec::with_capacity(rtl.nets.len());
        let mut cell_nets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for net in &rtl.nets {
            let mut members: Vec<u32> = Vec::with_capacity(net.sinks.len() + 1);
            members.push(net.driver.0);
            members.extend(net.sinks.iter().map(|s| s.0));
            members.sort_unstable();
            members.dedup();
            if members.len() < 2 || members.len() > MAX_NET_DEGREE {
                continue;
            }
            let id = nets.len() as u32;
            for &m in &members {
                cell_nets[m as usize].push(id);
            }
            nets.push(PlacerNet {
                members,
                weight: net.width as f64,
            });
        }

        PlacerContext {
            device,
            rtl,
            class,
            units,
            span,
            clb_cols: device.columns_of(ColumnKind::Clb),
            dsp_cols: device.columns_of(ColumnKind::Dsp),
            bram_cols: device.columns_of(ColumnKind::Bram),
            io_cols: device.columns_of(ColumnKind::Io),
            nets,
            cell_nets,
        }
    }

    fn cols_for(&self, k: ColumnKind) -> &[u32] {
        match k {
            ColumnKind::Clb => &self.clb_cols,
            ColumnKind::Dsp => &self.dsp_cols,
            ColumnKind::Bram => &self.bram_cols,
            ColumnKind::Io => &self.io_cols,
        }
    }

    /// Tile indices of a footprint window (clamped to the device height).
    fn footprint(&self, p: (u32, u32), sp: u32) -> impl Iterator<Item = usize> + '_ {
        let device = self.device;
        (p.1..(p.1 + sp).min(device.height)).map(move |y| device.tile_index(p.0, y))
    }

    /// Weighted HPWL of one net under `pos`.
    fn hpwl(&self, net: &PlacerNet, pos: &[(u32, u32)]) -> f64 {
        net.weight * NetBox::from_members(&net.members, pos).hpwl()
    }

    /// Cells the annealer may move: not I/O, and their class has columns.
    fn movable(&self) -> Vec<u32> {
        (0..self.class.len() as u32)
            .filter(|&i| {
                self.class[i as usize] != ColumnKind::Io
                    && !self.cols_for(self.class[i as usize]).is_empty()
            })
            .collect()
    }

    /// The connectivity-ordered column snake (the reference kernel's
    /// starting point).
    fn snake_initial(&self) -> Vec<(u32, u32)> {
        let n = self.class.len();
        let order = connectivity_order(self.rtl, n);
        let mut pos: Vec<(u32, u32)> = vec![(0, 0); n];
        let mut cursor: std::collections::HashMap<ColumnKind, (usize, u32)> =
            std::collections::HashMap::new();
        for i in order {
            let k = self.class[i];
            let cols = self.cols_for(k);
            if cols.is_empty() {
                pos[i] = (self.device.width / 2, self.device.height / 2);
                continue;
            }
            let entry = cursor.entry(k).or_insert((0, 0));
            let sp = self.span[i];
            if entry.1 + sp > self.device.height {
                entry.0 = (entry.0 + 1) % cols.len();
                entry.1 = 0;
            }
            pos[i] = (cols[entry.0], entry.1.min(self.device.height - sp));
            entry.1 += sp;
        }
        pos
    }

    /// Analytic wirelength-driven initial placement (the delta kernel's
    /// starting point): damped Jacobi iterations pull every movable cell
    /// toward the mean position of its net neighbours (I/O pads and
    /// column-less cells stay put and anchor the system), then each class
    /// is legalized into its columns by desired-x order with balanced
    /// column fill and desired-y stacking inside each column.
    fn analytic_initial(&self) -> Vec<(u32, u32)> {
        let snake = self.snake_initial();
        let movable = self.movable();
        if movable.is_empty() || self.nets.is_empty() {
            return snake;
        }
        let mut f: Vec<(f64, f64)> = snake.iter().map(|&(x, y)| (x as f64, y as f64)).collect();
        let mut next = f.clone();
        for _ in 0..ANALYTIC_ITERS {
            for &i in &movable {
                let i = i as usize;
                let mut sx = 0.0;
                let mut sy = 0.0;
                let mut sw = 0.0;
                for &nid in &self.cell_nets[i] {
                    let net = &self.nets[nid as usize];
                    // Centroid of the net's *other* members — the star pull.
                    let mut cx = 0.0;
                    let mut cy = 0.0;
                    for &m in &net.members {
                        cx += f[m as usize].0;
                        cy += f[m as usize].1;
                    }
                    let others = (net.members.len() - 1) as f64;
                    cx = (cx - f[i].0) / others;
                    cy = (cy - f[i].1) / others;
                    sx += net.weight * cx;
                    sy += net.weight * cy;
                    sw += net.weight;
                }
                if sw > 0.0 {
                    next[i] = (0.5 * f[i].0 + 0.5 * sx / sw, 0.5 * f[i].1 + 0.5 * sy / sw);
                }
            }
            std::mem::swap(&mut f, &mut next);
        }

        let mut pos = snake;
        for kind in [ColumnKind::Clb, ColumnKind::Dsp, ColumnKind::Bram] {
            let cols = self.cols_for(kind);
            if cols.is_empty() {
                continue;
            }
            let mut cells: Vec<u32> = movable
                .iter()
                .copied()
                .filter(|&i| self.class[i as usize] == kind)
                .collect();
            if cells.is_empty() {
                continue;
            }
            // Assign columns in desired-x order with balanced fill.
            cells.sort_unstable_by(|&a, &b| {
                let (fa, fb) = (f[a as usize], f[b as usize]);
                fa.0.total_cmp(&fb.0)
                    .then(fa.1.total_cmp(&fb.1))
                    .then(a.cmp(&b))
            });
            let total_span: u64 = cells.iter().map(|&i| self.span[i as usize] as u64).sum();
            let fill = (total_span as f64 / cols.len() as f64).ceil().max(1.0) as u64;
            let mut by_col: Vec<Vec<u32>> = vec![Vec::new(); cols.len()];
            let mut col = 0usize;
            let mut used = 0u64;
            for &i in &cells {
                if used >= fill && col + 1 < cols.len() {
                    col += 1;
                    used = 0;
                }
                by_col[col].push(i);
                used += self.span[i as usize] as u64;
            }
            // Stack each column in desired-y order, centering the stack on
            // the members' mean desired row so vertical positions survive
            // legalization instead of collapsing to the bottom edge.
            for (ci, members) in by_col.iter_mut().enumerate() {
                if members.is_empty() {
                    continue;
                }
                members.sort_unstable_by(|&a, &b| {
                    let (fa, fb) = (f[a as usize], f[b as usize]);
                    fa.1.total_cmp(&fb.1).then(a.cmp(&b))
                });
                let col_span: u32 = members
                    .iter()
                    .map(|&i| self.span[i as usize])
                    .sum::<u32>()
                    .min(self.device.height);
                let mean_y: f64 =
                    members.iter().map(|&i| f[i as usize].1).sum::<f64>() / members.len() as f64;
                let start = (mean_y - col_span as f64 / 2.0)
                    .clamp(0.0, (self.device.height - col_span) as f64)
                    as u32;
                let mut cursor = start;
                for &i in members.iter() {
                    let sp = self.span[i as usize];
                    let y = cursor.min(self.device.height - sp);
                    pos[i as usize] = (cols[ci], y);
                    cursor = cursor.saturating_add(sp).min(self.device.height);
                }
            }
        }
        pos
    }
}

/// Quadratic over-density penalty of one tile's load.
fn density_term(l: f64) -> f64 {
    let over = (l - 1.0).max(0.0);
    over * over
}

/// Exact density-cost delta for moving a cell of the given span and
/// per-tile load from `old` to `new`, evaluated against current `load`.
/// Overlap-aware: rows shared by the two footprints (same column, nearby
/// rows — the common late-annealing move) cancel exactly instead of being
/// double-counted against pre-removal loads.
fn density_delta(
    ctx: &PlacerContext,
    load: &[f64],
    old: (u32, u32),
    new: (u32, u32),
    span: u32,
    per_tile: f64,
) -> f64 {
    let h = ctx.device.height;
    let mut d = 0.0;
    if old.0 == new.0 {
        let (o0, o1) = (old.1, (old.1 + span).min(h));
        let (n0, n1) = (new.1, (new.1 + span).min(h));
        for y in o0..o1 {
            if y >= n0 && y < n1 {
                continue; // occupied before and after — no change
            }
            let t = ctx.device.tile_index(old.0, y);
            d += density_term(load[t] - per_tile) - density_term(load[t]);
        }
        for y in n0..n1 {
            if y >= o0 && y < o1 {
                continue;
            }
            let t = ctx.device.tile_index(new.0, y);
            d += density_term(load[t] + per_tile) - density_term(load[t]);
        }
    } else {
        for t in ctx.footprint(old, span) {
            d += density_term(load[t] - per_tile) - density_term(load[t]);
        }
        for t in ctx.footprint(new, span) {
            d += density_term(load[t] + per_tile) - density_term(load[t]);
        }
    }
    d
}

/// A net's cached bounding box with boundary-occupancy counts: how many
/// members sit exactly on each extreme. A move updates the box in O(1)
/// unless the moved cell was the only member on a receding boundary; then
/// the box is rescanned from the members (O(degree ≤ MAX_NET_DEGREE)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct NetBox {
    min_x: u32,
    max_x: u32,
    min_y: u32,
    max_y: u32,
    n_min_x: u32,
    n_max_x: u32,
    n_min_y: u32,
    n_max_y: u32,
}

impl NetBox {
    fn from_members(members: &[u32], pos: &[(u32, u32)]) -> NetBox {
        let mut b = NetBox {
            min_x: u32::MAX,
            max_x: 0,
            min_y: u32::MAX,
            max_y: 0,
            ..NetBox::default()
        };
        for &m in members {
            let (x, y) = pos[m as usize];
            if x < b.min_x {
                b.min_x = x;
                b.n_min_x = 0;
            }
            if x == b.min_x {
                b.n_min_x += 1;
            }
            if x > b.max_x {
                b.max_x = x;
                b.n_max_x = 0;
            }
            if x == b.max_x {
                b.n_max_x += 1;
            }
            if y < b.min_y {
                b.min_y = y;
                b.n_min_y = 0;
            }
            if y == b.min_y {
                b.n_min_y += 1;
            }
            if y > b.max_y {
                b.max_y = y;
                b.n_max_y = 0;
            }
            if y == b.max_y {
                b.n_max_y += 1;
            }
        }
        b
    }

    fn hpwl(&self) -> f64 {
        ((self.max_x - self.min_x) + (self.max_y - self.min_y)) as f64
    }

    /// The box after one member moves `old → new` on one axis, or `None`
    /// when a boundary recedes and a rescan is required. `(lo, hi, n_lo,
    /// n_hi)` are the axis bounds and their occupancy counts.
    fn axis_update(
        lo: u32,
        hi: u32,
        n_lo: u32,
        n_hi: u32,
        old: u32,
        new: u32,
    ) -> Option<(u32, u32, u32, u32)> {
        if old == new {
            return Some((lo, hi, n_lo, n_hi));
        }
        let (mut lo, mut hi, mut n_lo, mut n_hi) = (lo, hi, n_lo, n_hi);
        // Remove the old coordinate.
        if old == lo {
            n_lo -= 1;
            if n_lo == 0 && new > lo {
                return None; // lower boundary recedes — rescan
            }
        }
        if old == hi {
            n_hi -= 1;
            if n_hi == 0 && new < hi {
                return None;
            }
        }
        // Insert the new coordinate.
        if new < lo {
            lo = new;
            n_lo = 1;
        } else if new == lo {
            n_lo += 1;
        }
        if new > hi {
            hi = new;
            n_hi = 1;
        } else if new == hi {
            n_hi += 1;
        }
        Some((lo, hi, n_lo, n_hi))
    }

    /// The box after one member moves `old → new`. `pos` must already hold
    /// the new position (used by the rescan fallback). Increments
    /// `rescans` when the O(1) update is not possible.
    fn moved(
        &self,
        members: &[u32],
        pos: &[(u32, u32)],
        old: (u32, u32),
        new: (u32, u32),
        rescans: &mut u64,
    ) -> NetBox {
        let x = NetBox::axis_update(
            self.min_x,
            self.max_x,
            self.n_min_x,
            self.n_max_x,
            old.0,
            new.0,
        );
        let y = NetBox::axis_update(
            self.min_y,
            self.max_y,
            self.n_min_y,
            self.n_max_y,
            old.1,
            new.1,
        );
        match (x, y) {
            (Some((min_x, max_x, n_min_x, n_max_x)), Some((min_y, max_y, n_min_y, n_max_y))) => {
                NetBox {
                    min_x,
                    max_x,
                    min_y,
                    max_y,
                    n_min_x,
                    n_max_x,
                    n_min_y,
                    n_max_y,
                }
            }
            _ => {
                *rescans += 1;
                NetBox::from_members(members, pos)
            }
        }
    }
}

/// How a kernel evaluates and commits the wirelength part of a move.
trait WirelenModel {
    /// Weighted-HPWL delta for moving `cell` from `old` to `new`. On
    /// entry `pos[cell] == old`; on return `pos[cell] == new` (the caller
    /// restores it on rejection).
    fn wl_delta(
        &mut self,
        ctx: &PlacerContext,
        pos: &mut [(u32, u32)],
        cell: usize,
        old: (u32, u32),
        new: (u32, u32),
        stats: &mut PlaceStats,
    ) -> f64;

    /// Commit the last evaluated move.
    fn commit(&mut self);

    /// Discard the last evaluated move.
    fn discard(&mut self);
}

/// Reference evaluation: recompute every incident net's HPWL before and
/// after the move.
struct ReferenceWirelen;

impl WirelenModel for ReferenceWirelen {
    fn wl_delta(
        &mut self,
        ctx: &PlacerContext,
        pos: &mut [(u32, u32)],
        cell: usize,
        _old: (u32, u32),
        new: (u32, u32),
        stats: &mut PlaceStats,
    ) -> f64 {
        // Each proposal rescans every incident net twice (before/after) —
        // exactly the work the delta kernel's cached boxes avoid.
        stats.bbox_recomputes += 2 * ctx.cell_nets[cell].len() as u64;
        let mut d = 0.0;
        for &nid in &ctx.cell_nets[cell] {
            d -= ctx.hpwl(&ctx.nets[nid as usize], pos);
        }
        pos[cell] = new;
        for &nid in &ctx.cell_nets[cell] {
            d += ctx.hpwl(&ctx.nets[nid as usize], pos);
        }
        d
    }

    fn commit(&mut self) {}
    fn discard(&mut self) {}
}

/// Delta evaluation: cached per-net boxes, candidate boxes staged in a
/// scratch buffer and written back only on acceptance.
struct DeltaWirelen {
    boxes: Vec<NetBox>,
    staged: Vec<(u32, NetBox)>,
}

impl DeltaWirelen {
    fn new(ctx: &PlacerContext, pos: &[(u32, u32)]) -> Self {
        DeltaWirelen {
            boxes: ctx
                .nets
                .iter()
                .map(|n| NetBox::from_members(&n.members, pos))
                .collect(),
            staged: Vec::new(),
        }
    }
}

impl WirelenModel for DeltaWirelen {
    fn wl_delta(
        &mut self,
        ctx: &PlacerContext,
        pos: &mut [(u32, u32)],
        cell: usize,
        old: (u32, u32),
        new: (u32, u32),
        stats: &mut PlaceStats,
    ) -> f64 {
        pos[cell] = new;
        self.staged.clear();
        let mut d = 0.0;
        for &nid in &ctx.cell_nets[cell] {
            let net = &ctx.nets[nid as usize];
            let cur = self.boxes[nid as usize];
            let next = cur.moved(&net.members, pos, old, new, &mut stats.bbox_recomputes);
            d += net.weight * (next.hpwl() - cur.hpwl());
            self.staged.push((nid, next));
        }
        d
    }

    fn commit(&mut self) {
        for &(nid, b) in &self.staged {
            self.boxes[nid as usize] = b;
        }
    }

    fn discard(&mut self) {}
}

/// State threaded through the shared anneal loop.
struct AnnealState {
    pos: Vec<(u32, u32)>,
    load: Vec<f64>,
    total_wl: f64,
    total_density: f64,
    stats: PlaceStats,
    trajectory: Vec<f64>,
}

/// A kernel's annealing schedule: how many proposals to run, and whether
/// the loop may stop early once the anneal has gone cold.
struct Schedule {
    /// Proposal budget.
    iters: u64,
    /// When true, stop once a full quench window passes with almost no
    /// accepted moves (only meaningful after the schedule is past its
    /// hottest quarter). The reference kernel never exits early — it is
    /// the preserved pre-rewrite behaviour.
    quench_exit: bool,
    /// Initial temperature as a multiple of the starting placement's mean
    /// net wirelength. The reference kernel starts hot (it must melt the
    /// column snake); the delta kernel starts cold, refining the analytic
    /// placement instead of scrambling it.
    temp_scale: f64,
}

/// Proposals per quench-detection window.
const QUENCH_WINDOW: u64 = 1024;

/// Accepted moves per window below which the anneal counts as quenched
/// (≈1.5 % acceptance).
const QUENCH_ACCEPTS: u32 = 16;

/// The annealing loop shared by both kernels: identical move generator,
/// temperature schedule, and RNG stream — only the wirelength model and
/// the [`Schedule`] differ.
fn anneal<M: WirelenModel>(
    ctx: &PlacerContext,
    opts: &PlacerOptions,
    schedule: &Schedule,
    state: &mut AnnealState,
    model: &mut M,
) {
    let movable = ctx.movable();
    if movable.is_empty() {
        return;
    }
    // Column index of each cell within its class's column list, maintained
    // across accepted moves so move generation is O(1) instead of scanning
    // the column list per proposal.
    let mut col_idx: Vec<u32> = state
        .pos
        .iter()
        .enumerate()
        .map(|(i, p)| {
            ctx.cols_for(ctx.class[i])
                .iter()
                .position(|&c| c == p.0)
                .unwrap_or(0) as u32
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let iters = schedule.iters;
    let mut temperature = {
        let avg_wl = (state.total_wl / ctx.nets.len().max(1) as f64).max(1.0);
        avg_wl * schedule.temp_scale
    };
    let cooling = (1e-4f64).powf(1.0 / iters as f64);
    let sample_every = (iters / TRAJECTORY_SAMPLES).max(1);
    let mut window_accepts = 0u32;

    for step in 0..iters {
        if step % sample_every == 0 {
            state
                .trajectory
                .push(state.total_wl + opts.density_weight * state.total_density);
        }
        let frac = 1.0 - step as f64 / iters as f64; // 1 -> 0
        let i = movable[rng.gen_range(0..movable.len())] as usize;
        let k = ctx.class[i];
        let cols = ctx.cols_for(k);
        // Column window around the current column index.
        let cur_col_idx = col_idx[i] as usize;
        let col_window = ((cols.len() as f64 * frac).ceil() as usize).max(1);
        let lo = cur_col_idx.saturating_sub(col_window);
        let hi = (cur_col_idx + col_window + 1).min(cols.len());
        let new_col_idx = rng.gen_range(lo..hi);
        let new_col = cols[new_col_idx];
        // Row window around the current row, clamped so the footprint
        // always fits on the device (spans are ≤ the device height).
        let row_window = ((ctx.device.height as f64 * frac).ceil() as u32).max(2);
        let max_y = ctx.device.height - ctx.span[i];
        let y_lo = state.pos[i].1.saturating_sub(row_window).min(max_y);
        let y_hi = (state.pos[i].1 + row_window + 1).min(max_y + 1);
        let new_y = rng.gen_range(y_lo..y_hi.max(y_lo + 1));
        let old = state.pos[i];
        let new = (new_col, new_y);
        if old == new {
            temperature *= cooling;
            continue;
        }
        state.stats.proposed += 1;

        let d_wl = model.wl_delta(ctx, &mut state.pos, i, old, new, &mut state.stats);
        let per_tile = ctx.units[i] / ctx.span[i] as f64;
        let d_density = density_delta(ctx, &state.load, old, new, ctx.span[i], per_tile);

        let delta = d_wl + opts.density_weight * d_density;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
        if accept {
            for t in ctx.footprint(old, ctx.span[i]) {
                state.load[t] -= per_tile;
            }
            for t in ctx.footprint(new, ctx.span[i]) {
                state.load[t] += per_tile;
            }
            state.total_wl += d_wl;
            state.total_density += d_density;
            state.stats.accepted += 1;
            window_accepts += 1;
            col_idx[i] = new_col_idx as u32;
            model.commit();
        } else {
            state.pos[i] = old;
            model.discard();
        }
        temperature *= cooling;

        if schedule.quench_exit && step % QUENCH_WINDOW == QUENCH_WINDOW - 1 {
            if step >= iters / 4 && window_accepts < QUENCH_ACCEPTS {
                break;
            }
            window_accepts = 0;
        }

        // The drift guard: the incrementally-maintained totals must track a
        // from-scratch recompute (this is exactly the invariant the old
        // overlap-approximate density delta violated).
        #[cfg(debug_assertions)]
        if step % 4096 == 0 {
            let full = full_cost(ctx, &state.pos, opts.density_weight);
            let inc = state.total_wl + opts.density_weight * state.total_density;
            debug_assert!(
                (inc - full).abs() <= 1e-6 * full.abs().max(1.0),
                "incremental cost drifted: {inc} vs recomputed {full} at step {step}"
            );
        }
    }
}

/// From-scratch total cost of a candidate placement (wire-weighted HPWL
/// plus the quadratic over-density penalty).
fn full_cost(ctx: &PlacerContext, pos: &[(u32, u32)], density_weight: f64) -> f64 {
    let wl: f64 = ctx.nets.iter().map(|n| ctx.hpwl(n, pos)).sum();
    let mut load = vec![0.0f64; ctx.device.tiles() as usize];
    for (i, &p) in pos.iter().enumerate() {
        let per_tile = ctx.units[i] / ctx.span[i] as f64;
        for t in ctx.footprint(p, ctx.span[i]) {
            load[t] += per_tile;
        }
    }
    wl + density_weight * load.iter().map(|&l| density_term(l)).sum::<f64>()
}

/// Recompute a finished placement's cost from scratch under the same cost
/// model [`place`] maintains incrementally. Differential tests assert the
/// two agree to float accuracy for both kernels.
pub fn recompute_cost(
    rtl: &RtlDesign,
    device: &Device,
    opts: &PlacerOptions,
    placement: &Placement,
) -> f64 {
    let ctx = PlacerContext::build(rtl, device);
    full_cost(&ctx, &placement.pos, opts.density_weight)
}

/// Place an RTL design on a device.
pub fn place(rtl: &RtlDesign, device: &Device, opts: &PlacerOptions) -> Placement {
    let ctx = PlacerContext::build(rtl, device);

    let pos = match opts.kernel {
        PlaceKernel::DeltaAnneal => ctx.analytic_initial(),
        PlaceKernel::ReferenceAnneal => ctx.snake_initial(),
    };

    // Density grid.
    let mut load = vec![0.0f64; device.tiles() as usize];
    for (i, &p) in pos.iter().enumerate() {
        let per_tile = ctx.units[i] / ctx.span[i] as f64;
        for t in ctx.footprint(p, ctx.span[i]) {
            load[t] += per_tile;
        }
    }

    let total_wl: f64 = ctx.nets.iter().map(|n| ctx.hpwl(n, &pos)).sum();
    let total_density: f64 = load.iter().map(|&l| density_term(l)).sum();

    let mut state = AnnealState {
        pos,
        load,
        total_wl,
        total_density,
        stats: PlaceStats::default(),
        trajectory: Vec::new(),
    };

    let n_movable = ctx.movable().len() as u64;
    match opts.kernel {
        PlaceKernel::DeltaAnneal => {
            // The analytic start is already wirelength-driven, so the delta
            // kernel runs a refinement schedule — a quarter of the reference
            // budget — and additionally stops once the anneal quenches.
            let schedule = Schedule {
                iters: (n_movable * opts.moves_per_cell.div_ceil(4).max(1) as u64).max(1),
                quench_exit: true,
                temp_scale: 0.25,
            };
            let mut model = DeltaWirelen::new(&ctx, &state.pos);
            anneal(&ctx, opts, &schedule, &mut state, &mut model);
        }
        PlaceKernel::ReferenceAnneal => {
            let schedule = Schedule {
                iters: (n_movable * opts.moves_per_cell as u64).max(1),
                quench_exit: false,
                temp_scale: 2.0,
            };
            anneal(&ctx, opts, &schedule, &mut state, &mut ReferenceWirelen);
        }
    }

    let cost = state.total_wl + opts.density_weight * state.total_density;
    debug_assert!(
        (cost - full_cost(&ctx, &state.pos, opts.density_weight)).abs()
            <= 1e-6 * cost.abs().max(1.0),
        "final incremental cost drifted from recompute"
    );
    Placement {
        pos: state.pos,
        span: ctx.span,
        class: ctx.class,
        cost,
        height: device.height,
        stats: state.stats,
        cost_trajectory: state.trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn place_src(src: &str, opts: &PlacerOptions) -> (RtlDesign, Placement, Device) {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, opts);
        (d.rtl, p, device)
    }

    const SRC: &str =
        "int32 f(int32 a[32], int32 k) { int32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }";

    fn both_kernels() -> [PlacerOptions; 2] {
        [
            PlacerOptions::fast().with_kernel(PlaceKernel::DeltaAnneal),
            PlacerOptions::fast().with_kernel(PlaceKernel::ReferenceAnneal),
        ]
    }

    #[test]
    fn all_cells_inside_device() {
        for opts in both_kernels() {
            let (rtl, p, device) = place_src(SRC, &opts);
            assert_eq!(p.pos.len(), rtl.cells.len());
            for i in 0..rtl.cells.len() {
                let (x, y) = p.pos[i];
                assert!(x < device.width && y < device.height);
                // The whole footprint fits: no clamping is ever exercised
                // for well-formed spans.
                assert!(
                    y + p.span[i] <= device.height,
                    "{:?}: footprint off-device",
                    opts.kernel
                );
            }
        }
    }

    #[test]
    fn cells_sit_in_matching_columns() {
        for opts in both_kernels() {
            let (_, p, device) = place_src(SRC, &opts);
            for i in 0..p.pos.len() {
                let (x, _) = p.pos[i];
                if device.columns_of(p.class[i]).is_empty() {
                    continue;
                }
                assert_eq!(
                    device.column(x),
                    p.class[i],
                    "cell {i} of class {:?} in wrong column",
                    p.class[i]
                );
            }
        }
    }

    #[test]
    fn placement_is_deterministic() {
        for opts in both_kernels() {
            let (_, p1, _) = place_src(SRC, &opts);
            let (_, p2, _) = place_src(SRC, &opts);
            assert_eq!(p1.pos, p2.pos);
            assert_eq!(p1.stats, p2.stats);
            assert_eq!(p1.position_checksum(), p2.position_checksum());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (_, p1, _) = place_src(SRC, &PlacerOptions::fast());
        let mut o = PlacerOptions::fast();
        o.seed = 99;
        let (_, p2, _) = place_src(SRC, &o);
        assert_ne!(p1.pos, p2.pos);
    }

    #[test]
    fn incremental_cost_matches_recompute_for_both_kernels() {
        for opts in both_kernels() {
            let (rtl, p, device) = place_src(SRC, &opts);
            let full = recompute_cost(&rtl, &device, &opts, &p);
            assert!(
                (p.cost - full).abs() <= 1e-6 * full.abs().max(1.0),
                "{:?}: incremental {} vs recomputed {}",
                opts.kernel,
                p.cost,
                full
            );
        }
    }

    #[test]
    fn annealing_improves_over_initial() {
        // More moves should not produce a worse placement than (almost) none.
        let (_, cheap, _) = place_src(
            SRC,
            &PlacerOptions {
                moves_per_cell: 1,
                ..PlacerOptions::default()
            },
        );
        let (_, tuned, _) = place_src(
            SRC,
            &PlacerOptions {
                moves_per_cell: 100,
                ..PlacerOptions::default()
            },
        );
        assert!(
            tuned.cost <= cheap.cost * 1.05,
            "SA should not regress: {} vs {}",
            tuned.cost,
            cheap.cost
        );
    }

    #[test]
    fn footprints_follow_span() {
        for opts in both_kernels() {
            let (_, p, device) = place_src(SRC, &opts);
            for i in 0..p.pos.len() {
                let tiles: Vec<_> = p.footprint(i).collect();
                // The true clamped length (not the tautology the old test
                // asserted): span rows, cut at the device edge.
                let expected = p.span[i].min(device.height.saturating_sub(p.pos[i].1));
                assert_eq!(tiles.len() as u32, expected);
                assert!(tiles.iter().all(|&(x, _)| x == p.pos[i].0));
                assert!(tiles.iter().all(|&(_, y)| y < device.height));
            }
        }
    }

    #[test]
    fn footprint_clamps_to_device_height() {
        // A hand-built placement with an off-device window must clip at the
        // edge rather than naming tiles that do not exist.
        let p = Placement {
            pos: vec![(3, 10)],
            span: vec![8],
            class: vec![ColumnKind::Clb],
            cost: 0.0,
            height: 12,
            stats: PlaceStats::default(),
            cost_trajectory: Vec::new(),
        };
        let tiles: Vec<_> = p.footprint(0).collect();
        assert_eq!(tiles, vec![(3, 10), (3, 11)]);
    }

    #[test]
    fn stats_count_moves() {
        for opts in both_kernels() {
            let (_, p, _) = place_src(SRC, &opts);
            assert!(p.stats.proposed > 0);
            assert!(p.stats.accepted <= p.stats.proposed);
            assert!(!p.cost_trajectory.is_empty());
            if opts.kernel == PlaceKernel::ReferenceAnneal {
                // Two full rescans per incident net per proposal; every
                // proposal touches at least one net on these designs.
                assert!(
                    p.stats.bbox_recomputes >= 2 * p.stats.proposed,
                    "reference rescans unrecorded: {} rescans for {} proposals",
                    p.stats.bbox_recomputes,
                    p.stats.proposed
                );
            }
        }
    }

    #[test]
    fn kernel_parse_roundtrip() {
        for k in [PlaceKernel::DeltaAnneal, PlaceKernel::ReferenceAnneal] {
            assert_eq!(PlaceKernel::parse(k.name()), Some(k));
        }
        assert_eq!(PlaceKernel::parse("no-such-kernel"), None);
        assert_eq!(PlaceKernel::default(), PlaceKernel::DeltaAnneal);
    }
}
