//! Simulated-annealing placement.
//!
//! Cells are classified by their dominant resource (CLB / DSP / BRAM / IO)
//! and sized in tile-equivalents; a cell's footprint is a vertical window of
//! tiles in one column of the matching kind. Annealing minimizes
//! wire-weighted half-perimeter wirelength plus a quadratic over-density
//! penalty, so heavily connected logic clusters — the congestion hot spots
//! the prediction model must learn — emerge naturally.

use crate::device::{ColumnKind, Device};
use hls_synth::{CellKind, RtlDesign};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Placement result: per-cell center tile and vertical span.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Center tile `(x, y)` of each cell.
    pub pos: Vec<(u32, u32)>,
    /// Vertical footprint in tiles (span `y .. y + span`).
    pub span: Vec<u32>,
    /// Resource class of each cell.
    pub class: Vec<ColumnKind>,
    /// Final placement cost.
    pub cost: f64,
}

impl Placement {
    /// The tiles occupied by cell `i` (its vertical footprint window).
    pub fn footprint(&self, i: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (x, y) = self.pos[i];
        let span = self.span[i];
        (y..y + span).map(move |yy| (x, yy))
    }
}

/// Placer options.
#[derive(Debug, Clone)]
pub struct PlacerOptions {
    /// RNG seed (placement is deterministic for a given seed).
    pub seed: u64,
    /// Annealing moves per movable cell.
    pub moves_per_cell: u32,
    /// Over-density penalty weight.
    pub density_weight: f64,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        PlacerOptions {
            seed: 1,
            moves_per_cell: 60,
            density_weight: 48.0,
        }
    }
}

impl PlacerOptions {
    /// Reduced effort for tests.
    pub fn fast() -> Self {
        PlacerOptions {
            moves_per_cell: 8,
            ..Self::default()
        }
    }
}

/// Nets of interest to the placer: a star of cell pins with a wire weight.
#[derive(Debug, Clone)]
struct PlacerNet {
    members: Vec<u32>,
    weight: f64,
}

/// Maximum net degree considered by the incremental cost (huge control nets
/// are ignored — standard placer practice).
const MAX_NET_DEGREE: usize = 64;

/// Breadth-first order over the cell/net adjacency, restricted to nets of
/// degree ≤ [`MAX_NET_DEGREE`]. Unreached cells (isolated, or only on huge
/// nets) follow in index order, so the result is always a permutation of
/// `0..n`.
fn connectivity_order(rtl: &RtlDesign, n: usize) -> Vec<usize> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for net in &rtl.nets {
        let mut members: Vec<u32> = Vec::with_capacity(net.sinks.len() + 1);
        members.push(net.driver.0);
        members.extend(net.sinks.iter().map(|s| s.0));
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 || members.len() > MAX_NET_DEGREE {
            continue;
        }
        // Star adjacency around the driver keeps the graph sparse while
        // still pulling each net's cells together in the BFS.
        let hub = members[0];
        for &m in &members[1..] {
            adj[hub as usize].push(m);
            adj[m as usize].push(hub);
        }
    }

    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        queue.push_back(root);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for &m in &adj[c] {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    queue.push_back(m as usize);
                }
            }
        }
    }
    order
}

/// Place an RTL design on a device.
pub fn place(rtl: &RtlDesign, device: &Device, opts: &PlacerOptions) -> Placement {
    let n = rtl.cells.len();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Classify and size cells.
    let mut class = Vec::with_capacity(n);
    let mut units = Vec::with_capacity(n);
    for c in &rtl.cells {
        let r = c.resources;
        let (k, u) = if matches!(c.kind, CellKind::Port) {
            (ColumnKind::Io, 1.0)
        } else if r.brams > 0 {
            (ColumnKind::Bram, r.brams as f64)
        } else if r.dsps > 0 {
            (ColumnKind::Dsp, r.dsps as f64)
        } else {
            let u = (r.luts as f64 / 8.0).max(r.ffs as f64 / 16.0).max(0.05);
            (ColumnKind::Clb, u)
        };
        class.push(k);
        units.push(u);
    }
    let span: Vec<u32> = units.iter().map(|u| (u.ceil() as u32).max(1)).collect();

    // Column pools.
    let clb_cols = device.columns_of(ColumnKind::Clb);
    let dsp_cols = device.columns_of(ColumnKind::Dsp);
    let bram_cols = device.columns_of(ColumnKind::Bram);
    let io_cols = device.columns_of(ColumnKind::Io);
    let cols_for = |k: ColumnKind| -> &[u32] {
        match k {
            ColumnKind::Clb => &clb_cols,
            ColumnKind::Dsp => &dsp_cols,
            ColumnKind::Bram => &bram_cols,
            ColumnKind::Io => &io_cols,
        }
    };

    // Initial placement: snake through the matching columns per class, in
    // *connectivity* order (BFS over the small-net adjacency) rather than
    // cell-creation order. Cells wired together are placed near each other
    // from the start, so locally-connected structures — e.g. a replicated
    // buffer and the classifier stages it feeds — form tight clusters even
    // at low annealing effort.
    let order = connectivity_order(rtl, n);
    let mut pos: Vec<(u32, u32)> = vec![(0, 0); n];
    let mut cursor: std::collections::HashMap<ColumnKind, (usize, u32)> =
        std::collections::HashMap::new();
    for i in order {
        let k = class[i];
        let cols = cols_for(k);
        if cols.is_empty() {
            pos[i] = (device.width / 2, device.height / 2);
            continue;
        }
        let entry = cursor.entry(k).or_insert((0, 0));
        let sp = span[i];
        if entry.1 + sp > device.height {
            entry.0 = (entry.0 + 1) % cols.len();
            entry.1 = 0;
        }
        pos[i] = (cols[entry.0], entry.1);
        entry.1 += sp;
    }

    // Density grid.
    let mut load = vec![0.0f64; device.tiles() as usize];
    let footprint = |p: (u32, u32), sp: u32| -> Vec<usize> {
        (p.1..(p.1 + sp).min(device.height))
            .map(|y| device.tile_index(p.0, y))
            .collect()
    };
    for i in 0..n {
        let per_tile = units[i] / span[i] as f64;
        for t in footprint(pos[i], span[i]) {
            load[t] += per_tile;
        }
    }

    // Placer nets.
    let mut nets: Vec<PlacerNet> = Vec::with_capacity(rtl.nets.len());
    let mut cell_nets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for net in &rtl.nets {
        let mut members: Vec<u32> = Vec::with_capacity(net.sinks.len() + 1);
        members.push(net.driver.0);
        members.extend(net.sinks.iter().map(|s| s.0));
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 || members.len() > MAX_NET_DEGREE {
            continue;
        }
        let id = nets.len() as u32;
        for &m in &members {
            cell_nets[m as usize].push(id);
        }
        nets.push(PlacerNet {
            members,
            weight: net.width as f64,
        });
    }

    let hpwl = |net: &PlacerNet, pos: &[(u32, u32)]| -> f64 {
        let mut min_x = u32::MAX;
        let mut max_x = 0;
        let mut min_y = u32::MAX;
        let mut max_y = 0;
        for &m in &net.members {
            let (x, y) = pos[m as usize];
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        net.weight * ((max_x - min_x) + (max_y - min_y)) as f64
    };

    let density_term = |l: f64| -> f64 {
        let over = (l - 1.0).max(0.0);
        over * over
    };

    let mut total_wl: f64 = nets.iter().map(|nt| hpwl(nt, &pos)).sum();
    let mut total_density: f64 = load.iter().map(|&l| density_term(l)).sum();

    // Movable cells.
    let movable: Vec<u32> = (0..n as u32)
        .filter(|&i| class[i as usize] != ColumnKind::Io && !cols_for(class[i as usize]).is_empty())
        .collect();
    if movable.is_empty() {
        let cost = total_wl + opts.density_weight * total_density;
        return Placement {
            pos,
            span,
            class,
            cost,
        };
    }

    // Annealing with range-limited moves: as the temperature drops, moves
    // shrink from device-wide to local shuffles.
    let iters = (movable.len() as u64 * opts.moves_per_cell as u64).max(1);
    let mut temperature = {
        let avg_wl = (total_wl / nets.len().max(1) as f64).max(1.0);
        avg_wl * 2.0
    };
    let cooling = (1e-4f64).powf(1.0 / iters as f64);

    for step in 0..iters {
        let frac = 1.0 - step as f64 / iters as f64; // 1 -> 0
        let i = movable[rng.gen_range(0..movable.len())] as usize;
        let k = class[i];
        let cols = cols_for(k);
        // Column window around the current column index.
        let cur_col_idx = cols.iter().position(|&c| c == pos[i].0).unwrap_or(0);
        let col_window = ((cols.len() as f64 * frac).ceil() as usize).max(1);
        let lo = cur_col_idx.saturating_sub(col_window);
        let hi = (cur_col_idx + col_window + 1).min(cols.len());
        let new_col = cols[rng.gen_range(lo..hi)];
        // Row window around the current row.
        let row_window = ((device.height as f64 * frac).ceil() as u32).max(2);
        let max_y = device.height.saturating_sub(span[i]).max(1);
        let y_lo = pos[i].1.saturating_sub(row_window);
        let y_hi = (pos[i].1 + row_window + 1).min(max_y);
        let new_y = rng.gen_range(y_lo..y_hi.max(y_lo + 1));
        let old = pos[i];
        let new = (new_col, new_y);
        if old == new {
            continue;
        }

        // Wirelength delta.
        let mut d_wl = 0.0;
        for &nid in &cell_nets[i] {
            d_wl -= hpwl(&nets[nid as usize], &pos);
        }
        pos[i] = new;
        for &nid in &cell_nets[i] {
            d_wl += hpwl(&nets[nid as usize], &pos);
        }

        // Density delta.
        let per_tile = units[i] / span[i] as f64;
        let mut d_density = 0.0;
        for t in footprint(old, span[i]) {
            d_density -= density_term(load[t]);
            d_density += density_term(load[t] - per_tile);
        }
        for t in footprint(new, span[i]) {
            // Note: disjoint from old footprint unless same column overlap;
            // treat approximately (error is second-order).
            d_density -= density_term(load[t]);
            d_density += density_term(load[t] + per_tile);
        }

        let delta = d_wl + opts.density_weight * d_density;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
        if accept {
            for t in footprint(old, span[i]) {
                load[t] -= per_tile;
            }
            for t in footprint(new, span[i]) {
                load[t] += per_tile;
            }
            total_wl += d_wl;
            total_density += d_density;
        } else {
            pos[i] = old;
        }
        temperature *= cooling;
    }

    let cost = total_wl + opts.density_weight * total_density;
    Placement {
        pos,
        span,
        class,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn place_src(src: &str, opts: &PlacerOptions) -> (RtlDesign, Placement, Device) {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let device = Device::xc7z020();
        let p = place(&d.rtl, &device, opts);
        (d.rtl, p, device)
    }

    const SRC: &str =
        "int32 f(int32 a[32], int32 k) { int32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }";

    #[test]
    fn all_cells_inside_device() {
        let (rtl, p, device) = place_src(SRC, &PlacerOptions::fast());
        assert_eq!(p.pos.len(), rtl.cells.len());
        for i in 0..rtl.cells.len() {
            let (x, y) = p.pos[i];
            assert!(x < device.width && y < device.height);
        }
    }

    #[test]
    fn cells_sit_in_matching_columns() {
        let (_, p, device) = place_src(SRC, &PlacerOptions::fast());
        for i in 0..p.pos.len() {
            let (x, _) = p.pos[i];
            if device.columns_of(p.class[i]).is_empty() {
                continue;
            }
            assert_eq!(
                device.column(x),
                p.class[i],
                "cell {i} of class {:?} in wrong column",
                p.class[i]
            );
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let (_, p1, _) = place_src(SRC, &PlacerOptions::fast());
        let (_, p2, _) = place_src(SRC, &PlacerOptions::fast());
        assert_eq!(p1.pos, p2.pos);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, p1, _) = place_src(SRC, &PlacerOptions::fast());
        let mut o = PlacerOptions::fast();
        o.seed = 99;
        let (_, p2, _) = place_src(SRC, &o);
        assert_ne!(p1.pos, p2.pos);
    }

    #[test]
    fn annealing_improves_over_initial() {
        // More moves should not produce a worse placement than (almost) none.
        let (_, cheap, _) = place_src(
            SRC,
            &PlacerOptions {
                moves_per_cell: 1,
                ..PlacerOptions::default()
            },
        );
        let (_, tuned, _) = place_src(
            SRC,
            &PlacerOptions {
                moves_per_cell: 100,
                ..PlacerOptions::default()
            },
        );
        assert!(
            tuned.cost <= cheap.cost * 1.05,
            "SA should not regress: {} vs {}",
            tuned.cost,
            cheap.cost
        );
    }

    #[test]
    fn footprints_follow_span() {
        let (_, p, _) = place_src(SRC, &PlacerOptions::fast());
        for i in 0..p.pos.len() {
            let tiles: Vec<_> = p.footprint(i).collect();
            assert_eq!(tiles.len() as u32, p.span[i].min(tiles.len() as u32));
            assert!(tiles.iter().all(|&(x, _)| x == p.pos[i].0));
        }
    }
}
