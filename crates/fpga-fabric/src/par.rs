//! The place-and-route driver: placement → routing → congestion → timing.

use crate::congestion::CongestionMap;
use crate::device::Device;
use crate::place::{place, Placement, PlacerOptions};
use crate::route::{route, RouteResult, RouterOptions};
use crate::timing::{analyze, TimingResult, WireModel};
use hls_synth::{CellId, SynthesizedDesign};
use std::time::{Duration, Instant};

/// PAR options.
#[derive(Debug, Clone, Default)]
pub struct ParOptions {
    /// Placer options.
    pub placer: PlacerOptions,
    /// Router options.
    pub router: RouterOptions,
    /// Wire delay model.
    pub wire_model: WireModel,
}

impl ParOptions {
    /// Reduced effort for tests.
    pub fn fast() -> Self {
        ParOptions {
            placer: PlacerOptions::fast(),
            ..Self::default()
        }
    }

    /// Set the placement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.placer.seed = seed;
        self
    }

    /// Set the placement kernel.
    pub fn with_place_kernel(mut self, kernel: crate::place::PlaceKernel) -> Self {
        self.placer.kernel = kernel;
        self
    }
}

/// The result of implementing a synthesized design on a device.
#[derive(Debug, Clone)]
pub struct ImplResult {
    /// Cell placement.
    pub placement: Placement,
    /// Routing usage and per-connection stats.
    pub route: RouteResult,
    /// Per-tile congestion map (the label source).
    pub congestion: CongestionMap,
    /// Timing summary.
    pub timing: TimingResult,
}

impl ImplResult {
    /// Tiles occupied by a cell (its placed footprint).
    pub fn cell_tiles(&self, cell: CellId) -> Vec<(u32, u32)> {
        self.placement.footprint(cell.index()).collect()
    }

    /// Mean (vertical, horizontal) congestion over a cell's footprint.
    pub fn cell_congestion(&self, cell: CellId) -> (f64, f64) {
        let tiles = self.cell_tiles(cell);
        if tiles.is_empty() {
            return (0.0, 0.0);
        }
        let mut v = 0.0;
        let mut h = 0.0;
        let mut n = 0.0;
        for (x, y) in tiles {
            if x < self.congestion.width && y < self.congestion.height {
                v += self.congestion.v_at(x, y);
                h += self.congestion.h_at(x, y);
                n += 1.0;
            }
        }
        if n == 0.0 {
            (0.0, 0.0)
        } else {
            (v / n, h / n)
        }
    }
}

/// Wall-clock spent in each implementation stage of one [`run_par_timed`]
/// call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ParStageTimings {
    /// Simulated-annealing placement.
    pub place: Duration,
    /// Capacity-aware global routing.
    pub route: Duration,
    /// Congestion-map extraction.
    pub congestion: Duration,
    /// Static timing analysis.
    pub timing: Duration,
}

impl ParStageTimings {
    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.place + self.route + self.congestion + self.timing
    }
}

/// Run the full implementation flow on a synthesized design.
pub fn run_par(design: &SynthesizedDesign, device: &Device, opts: &ParOptions) -> ImplResult {
    run_par_timed(design, device, opts).0
}

/// [`run_par`], also reporting per-stage wall-clock timings.
///
/// All inputs are plain data (`Send + Sync`), so callers may fan this
/// function out across worker threads — one design per worker — which is
/// exactly what `congestion_core::CongestionFlow` does for dataset builds.
pub fn run_par_timed(
    design: &SynthesizedDesign,
    device: &Device,
    opts: &ParOptions,
) -> (ImplResult, ParStageTimings) {
    run_par_inner(design, device, opts, None)
}

/// [`run_par_timed`] recording into an [`obskit::Collector`]: one span per
/// stage (`place`/`route`/`congestion`/`timing`) plus the placer's and
/// router's registry metrics (see [`record_place_metrics`] and
/// [`record_route_metrics`]).
pub fn run_par_obs(
    design: &SynthesizedDesign,
    device: &Device,
    opts: &ParOptions,
    obs: &obskit::Collector,
) -> (ImplResult, ParStageTimings) {
    run_par_inner(design, device, opts, Some(obs))
}

/// Record a finished route's deterministic registry metrics: the
/// [`RouteStats`](crate::route::RouteStats) counters under `route.*` and
/// the per-pass overflowed-tile convergence curve as the
/// `route.pass_overflow` histogram.
pub fn record_route_metrics(obs: &obskit::Collector, route: &crate::route::RouteResult) {
    let s = &route.stats;
    obs.inc("route.expanded_nodes", s.expanded_nodes);
    obs.inc("route.heap_pushes", s.heap_pushes);
    obs.inc("route.rerouted_conns", s.rerouted_conns);
    obs.inc("route.window_expansions", s.window_expansions);
    obs.inc("route.passes_run", s.passes_run as u64);
    obs.inc("route.conns", route.conns.len() as u64);
    for &tiles in &route.pass_overflow {
        obs.observe("route.pass_overflow", tiles as f64);
    }
}

/// Record a finished placement's deterministic registry metrics: the
/// [`PlaceStats`](crate::place::PlaceStats) counters under `place.*` and
/// the sampled annealing cost-descent curve as the `place.cost_trajectory`
/// histogram.
pub fn record_place_metrics(obs: &obskit::Collector, placement: &Placement) {
    let s = &placement.stats;
    obs.inc("place.proposed_moves", s.proposed);
    obs.inc("place.accepted_moves", s.accepted);
    obs.inc("place.bbox_recomputes", s.bbox_recomputes);
    obs.inc("place.cells", placement.pos.len() as u64);
    for &cost in &placement.cost_trajectory {
        obs.observe("place.cost_trajectory", cost);
    }
}

fn run_par_inner(
    design: &SynthesizedDesign,
    device: &Device,
    opts: &ParOptions,
    obs: Option<&obskit::Collector>,
) -> (ImplResult, ParStageTimings) {
    let mut timings = ParStageTimings::default();
    // `Collector::span` needs `&Collector`; for the un-observed path a
    // throwaway collector keeps one code path without measurable cost.
    let scratch;
    let obs = match obs {
        Some(o) => o,
        None => {
            scratch = obskit::Collector::new();
            &scratch
        }
    };

    let start = Instant::now();
    let placement = {
        let _span = obs.span("place");
        place(&design.rtl, device, &opts.placer)
    };
    timings.place = start.elapsed();
    record_place_metrics(obs, &placement);

    let start = Instant::now();
    let route = {
        let _span = obs.span("route");
        route(&design.rtl, &placement, device, &opts.router)
    };
    timings.route = start.elapsed();
    record_route_metrics(obs, &route);

    let start = Instant::now();
    let congestion = {
        let _span = obs.span("congestion");
        CongestionMap::from_route(&route, device)
    };
    timings.congestion = start.elapsed();

    let start = Instant::now();
    let logic_delay = design
        .report
        .top_report()
        .estimated_clock_ns
        .max(design.options.clock_ns * 0.35);
    let timing = {
        let _span = obs.span("timing");
        analyze(
            &route,
            logic_delay,
            design.options.clock_ns,
            &opts.wire_model,
        )
    };
    timings.timing = start.elapsed();

    (
        ImplResult {
            placement,
            route,
            congestion,
            timing,
        },
        timings,
    )
}

// The parallel dataset builder moves these across worker threads; keep the
// guarantee explicit so a future `Rc`/`RefCell` sneaking into the flow types
// fails to compile here rather than at a distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SynthesizedDesign>();
    assert_send_sync::<Device>();
    assert_send_sync::<ParOptions>();
    assert_send_sync::<ImplResult>();
    assert_send_sync::<ParStageTimings>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn implement(src: &str) -> (SynthesizedDesign, ImplResult) {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let r = run_par(&d, &Device::xc7z020(), &ParOptions::fast());
        (d, r)
    }

    #[test]
    fn par_produces_complete_result() {
        let (d, r) = implement(
            "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        );
        assert_eq!(r.placement.pos.len(), d.rtl.cells.len());
        assert!(r.timing.fmax_mhz > 0.0);
        assert!(r.congestion.max_any() >= 0.0);
    }

    #[test]
    fn cell_congestion_readable_for_all_cells() {
        let (d, r) = implement("int32 f(int32 x, int32 y) { return x * y + x; }");
        for c in &d.rtl.cells {
            let (v, h) = r.cell_congestion(c.id);
            assert!(v >= 0.0 && h >= 0.0);
            assert!(v.is_finite() && h.is_finite());
        }
    }

    #[test]
    fn par_is_deterministic() {
        let (_, r1) = implement("int32 f(int32 x, int32 y) { return x * y + x; }");
        let (_, r2) = implement("int32 f(int32 x, int32 y) { return x * y + x; }");
        assert_eq!(r1.placement.pos, r2.placement.pos);
        assert_eq!(r1.timing.critical_path_ns, r2.timing.critical_path_ns);
    }

    #[test]
    fn bigger_parallel_design_is_more_congested() {
        let small = implement(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i]; } return s; }",
        )
        .1;
        let big = implement(
            "int32 f(int32 a[256], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=16\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 256; i++) { s = s + a[i] * k; } return s; }",
        )
        .1;
        assert!(
            big.congestion.mean_vertical() + big.congestion.mean_horizontal()
                > small.congestion.mean_vertical() + small.congestion.mean_horizontal(),
            "parallel design should be more congested"
        );
    }
}
