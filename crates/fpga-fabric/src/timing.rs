//! Post-route static timing: critical path, WNS, Fmax.
//!
//! The model composes the HLS-estimated per-state logic delay with placed
//! wire delays; congestion adds detour delay (wires through overloaded tiles
//! are diverted, "generating longer delays", paper §I). This reproduces the
//! paper's headline observation that a heavily congested implementation
//! misses timing badly (Table I: WNS −13.6 ns at a 10 ns target).

use crate::route::RouteResult;

/// Timing analysis output.
#[derive(Debug, Clone, Copy)]
pub struct TimingResult {
    /// Critical path in ns.
    pub critical_path_ns: f64,
    /// Worst negative slack (target − critical); negative when timing fails.
    pub wns_ns: f64,
    /// Maximum achievable frequency in MHz.
    pub fmax_mhz: f64,
}

/// Wire delay model parameters.
#[derive(Debug, Clone, Copy)]
pub struct WireModel {
    /// Fixed net delay (ns).
    pub base_ns: f64,
    /// Delay per tile of routed length (ns).
    pub per_tile_ns: f64,
    /// Delay per unit of summed overflow ratio along the path (ns).
    pub per_overflow_ns: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            base_ns: 0.15,
            per_tile_ns: 0.045,
            per_overflow_ns: 2.4,
        }
    }
}

/// Analyze timing of a routed design.
///
/// `logic_delay_ns` is the worst per-state combinational delay from the HLS
/// schedule; the worst wire (length + congestion detour) is added on top.
pub fn analyze(
    route: &RouteResult,
    logic_delay_ns: f64,
    clock_target_ns: f64,
    model: &WireModel,
) -> TimingResult {
    // Congestion detour delay saturates: a real router spreads an
    // over-subscribed region over a bounded neighborhood.
    let worst_wire = route
        .conns
        .iter()
        .map(|c| {
            model.base_ns
                + model.per_tile_ns * c.len as f64
                + model.per_overflow_ns * c.overflow.min(5.0)
        })
        .fold(0.0, f64::max);
    let critical = (logic_delay_ns + worst_wire).max(0.1);
    TimingResult {
        critical_path_ns: critical,
        wns_ns: clock_target_ns - critical,
        fmax_mhz: 1000.0 / critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::ConnRoute;

    fn route_with(conns: Vec<ConnRoute>) -> RouteResult {
        RouteResult {
            h_usage: vec![],
            v_usage: vec![],
            conns,
            width: 1,
            height: 1,
            stats: Default::default(),
            pass_overflow: vec![],
        }
    }

    #[test]
    fn uncongested_meets_timing() {
        let r = route_with(vec![ConnRoute {
            net: 0,
            len: 5,
            overflow: 0.0,
        }]);
        let t = analyze(&r, 6.0, 10.0, &WireModel::default());
        assert!(t.wns_ns > 0.0, "wns = {}", t.wns_ns);
        assert!(t.fmax_mhz > 100.0);
    }

    #[test]
    fn congestion_degrades_timing() {
        let clean = route_with(vec![ConnRoute {
            net: 0,
            len: 10,
            overflow: 0.0,
        }]);
        let congested = route_with(vec![ConnRoute {
            net: 0,
            len: 10,
            overflow: 5.0,
        }]);
        let m = WireModel::default();
        let t1 = analyze(&clean, 8.0, 10.0, &m);
        let t2 = analyze(&congested, 8.0, 10.0, &m);
        assert!(t2.critical_path_ns > t1.critical_path_ns);
        assert!(t2.fmax_mhz < t1.fmax_mhz);
        assert!(t2.wns_ns < 0.0, "heavy congestion misses timing");
    }

    #[test]
    fn empty_route_still_sane() {
        let t = analyze(&route_with(vec![]), 5.0, 10.0, &WireModel::default());
        assert!(t.fmax_mhz.is_finite());
        assert!(t.critical_path_ns >= 5.0);
    }
}
