//! Synthetic **Spam Filtering**: stochastic-gradient-descent steps of a
//! linear classifier — dot products over a feature vector followed by a
//! shift-scaled weight update (the Rosetta kernel's compute shape).

use crate::{Benchmark, Preset};
use hls_ir::directives::{Directives, Partition};
use std::fmt::Write;

/// Feature vector dimension.
pub const DIM: usize = 64;
/// Training samples per invocation.
pub const SAMPLES: usize = 6;

/// The kernel source.
pub fn source() -> String {
    let mut s = String::new();
    let total = DIM * SAMPLES;
    let _ = writeln!(
        s,
        "int32 spam_filter(int16 wvec[{DIM}], int16 feats[{total}]) {{"
    );
    let _ = writeln!(s, "    int32 hits = 0;");
    let _ = writeln!(s, "    for (k = 0; k < {SAMPLES}; k++) {{");
    let _ = writeln!(s, "        int32 acc = 0;");
    let _ = writeln!(s, "        for (j = 0; j < {DIM}; j++) {{");
    let _ = writeln!(s, "            acc = acc + wvec[j] * feats[k * {DIM} + j];");
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "        int32 pred = acc > 0 ? 1 : 0;");
    let _ = writeln!(s, "        hits = hits + pred;");
    let _ = writeln!(s, "        for (j = 0; j < {DIM}; j++) {{");
    let _ = writeln!(
        s,
        "            wvec[j] = wvec[j] + (feats[k * {DIM} + j] >> 4);"
    );
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return hits;");
    let _ = writeln!(s, "}}");
    s
}

/// Preset directives.
pub fn directives(preset: Preset) -> Directives {
    let mut d = Directives::new();
    if preset == Preset::Optimized {
        d.set_unroll("spam_filter/loop1", 16); // dot product
        d.set_unroll("spam_filter/loop2", 16); // weight update
        d.set_partition("spam_filter/wvec", Partition::Cyclic(16));
        d.set_partition("spam_filter/feats", Partition::Cyclic(16));
        d.set_pipeline("spam_filter/loop0", 4);
    }
    d
}

/// The benchmark for a preset.
pub fn benchmark(preset: Preset) -> Benchmark {
    Benchmark {
        name: format!("spam_filter_{preset:?}").to_lowercase(),
        source: source(),
        directives: directives(preset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    #[test]
    fn optimized_unrolls_dot_product() {
        let m = benchmark(Preset::Optimized).build().unwrap();
        let top = m.top_function();
        let h = top.kind_histogram();
        assert!(
            h[OpKind::Mul.index()] >= 16,
            "16-way unrolled MACs, got {}",
            h[OpKind::Mul.index()]
        );
        assert!(h[OpKind::Store.index()] >= 16, "unrolled weight updates");
    }

    #[test]
    fn plain_has_single_mac() {
        let m = benchmark(Preset::Plain).build().unwrap();
        let h = m.top_function().kind_histogram();
        // One multiply in the dot-product loop plus index arithmetic.
        assert!(h[OpKind::Mul.index()] <= 4);
    }
}
