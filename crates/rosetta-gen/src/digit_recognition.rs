//! Synthetic **Digit Recognition**: K-nearest-neighbour over binarized
//! digits — Hamming distances (XOR + popcount) against a training set,
//! followed by a best-match reduction.

use crate::{Benchmark, Preset};
use hls_ir::directives::{Directives, Partition};
use std::fmt::Write;

/// Number of training digits.
pub const TRAIN: usize = 48;

/// The kernel source.
pub fn source() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "int32 dr_distance(int64 a, int64 b) {{");
    let _ = writeln!(s, "    return popcount(a ^ b);");
    let _ = writeln!(s, "}}");
    let _ = writeln!(s, "int32 digit_rec(int64 test, int64 train[{TRAIN}]) {{");
    let _ = writeln!(s, "    int32 best = 9999;");
    let _ = writeln!(s, "    int32 besti = 0;");
    let _ = writeln!(s, "    for (i = 0; i < {TRAIN}; i++) {{");
    let _ = writeln!(s, "        int32 d = dr_distance(test, train[i]);");
    let _ = writeln!(s, "        if (d < best) {{");
    let _ = writeln!(s, "            best = d;");
    let _ = writeln!(s, "            besti = i;");
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return besti;");
    let _ = writeln!(s, "}}");
    s
}

/// Preset directives.
pub fn directives(preset: Preset) -> Directives {
    let mut d = Directives::new();
    if preset == Preset::Optimized {
        d.set_inline("dr_distance", true);
        d.set_unroll("digit_rec/loop0", 8);
        d.set_partition("digit_rec/train", Partition::Cyclic(8));
    }
    d
}

/// The benchmark for a preset.
pub fn benchmark(preset: Preset) -> Benchmark {
    Benchmark {
        name: format!("digit_recognition_{preset:?}").to_lowercase(),
        source: source(),
        directives: directives(preset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    #[test]
    fn optimized_unrolls_popcount_forest() {
        let m = benchmark(Preset::Optimized).build().unwrap();
        let top = m.function_by_name("digit_rec").unwrap();
        let h = top.kind_histogram();
        // 8 inlined distance computations per iteration, each with a SWAR
        // popcount containing several shifts.
        assert!(h[OpKind::Xor.index()] >= 8);
        assert!(h[OpKind::LShr.index()] >= 8 * 4);
        assert!(top.call_sites().is_empty());
    }

    #[test]
    fn plain_keeps_call() {
        let m = benchmark(Preset::Plain).build().unwrap();
        let top = m.function_by_name("digit_rec").unwrap();
        assert_eq!(top.call_sites().len(), 1);
    }
}
