//! Synthetic **Face Detection**: a cascade of classifiers sliding over an
//! image, modelled on the Rosetta kernel the paper uses for its motivation
//! (Table I, Fig 1) and its case study (Table VI, Fig 6).
//!
//! Each window position runs `STAGES` weighted-sum classifiers whose votes
//! are summed and compared — the exact structure where the paper's model
//! localizes congestion ("the region where multiple results returned by the
//! classifiers are summed up and compared").

use crate::Benchmark;
use hls_ir::directives::{Directives, Partition};
use std::fmt::Write;

/// Number of classifier stages in the cascade.
pub const STAGES: usize = 6;
/// Window size in pixels.
pub const WIN: usize = 16;
/// Number of sliding-window positions.
pub const POSITIONS: usize = 8;
/// Image buffer length.
pub const IMG: usize = 128;

/// The case-study implementation variants (paper Table VI + Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FdVariant {
    /// No directives at all (Table I, "Without Directives").
    Plain,
    /// Inlined cascade, full unrolling, complete partitions — the congested
    /// baseline (Table I "With Directives", Table VI "Baseline").
    Optimized,
    /// Step 1 of the case study: remove classifier inlining (classifier
    /// instances are reused across window positions, which also relaxes the
    /// window-loop unrolling — the instance-reuse mechanism our simulated
    /// flow captures; see EXPERIMENTS.md).
    NoInline,
    /// Step 2: additionally replicate the window buffer so each half of the
    /// cascade reads its own copy, cutting the fan-out of the shared
    /// partitioned array (the paper's "Replication").
    Replicated,
}

/// The classifier + detector source. `replicate` selects the step-2 source
/// with duplicated window buffers.
pub fn source(replicate: bool) -> String {
    let step = WIN / 2;
    let mut s = String::new();
    // Cascade classifier: weighted sum against per-stage weights + threshold.
    let _ = writeln!(
        s,
        "int32 fd_classifier(int8 win[{WIN}], int8 wgt[{WIN}], int32 thr) {{"
    );
    let _ = writeln!(s, "    int32 acc = 0;");
    let _ = writeln!(s, "    for (j = 0; j < {WIN}; j++) {{");
    let _ = writeln!(s, "        acc = acc + win[j] * wgt[j];");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return acc > thr ? 1 : 0;");
    let _ = writeln!(s, "}}");

    // Detector top.
    let weight_params: Vec<String> = (0..STAGES).map(|k| format!("int8 w{k}[{WIN}]")).collect();
    let _ = writeln!(
        s,
        "int32 face_detect(int8 img[{IMG}], {}) {{",
        weight_params.join(", ")
    );
    let _ = writeln!(s, "    int32 votes = 0;");
    let _ = writeln!(s, "    for (p = 0; p < {POSITIONS}; p++) {{");
    if replicate {
        // Replicated window buffers, one per pair of cascade stages; the
        // copies are chained off the first buffer's registers so the image
        // memory is still read only once per pixel.
        for c in ["wa", "wb", "wc"] {
            let _ = writeln!(s, "        int8 {c}[{WIN}];");
        }
        let _ = writeln!(s, "        for (j = 0; j < {WIN}; j++) {{");
        let _ = writeln!(s, "            int8 pix = img[p * {step} + j];");
        let _ = writeln!(s, "            wa[j] = pix;");
        let _ = writeln!(s, "            wb[j] = pix;");
        let _ = writeln!(s, "            wc[j] = pix;");
        let _ = writeln!(s, "        }}");
    } else {
        let _ = writeln!(s, "        int8 win[{WIN}];");
        let _ = writeln!(s, "        for (j = 0; j < {WIN}; j++) {{");
        let _ = writeln!(s, "            win[j] = img[p * {step} + j];");
        let _ = writeln!(s, "        }}");
    }
    let _ = writeln!(s, "        int32 score = 0;");
    for k in 0..STAGES {
        let buf = if !replicate {
            "win"
        } else {
            ["wa", "wb", "wc"][(k * 3 / STAGES).min(2)]
        };
        let thr = 60 + 10 * k;
        let _ = writeln!(
            s,
            "        score = score + fd_classifier({buf}, w{k}, {thr});"
        );
    }
    let _ = writeln!(
        s,
        "        votes = votes + (score > {} ? 1 : 0);",
        STAGES / 2
    );
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return votes;");
    let _ = writeln!(s, "}}");
    s
}

/// Directives for each variant.
pub fn directives(variant: FdVariant) -> Directives {
    let mut d = Directives::new();
    match variant {
        FdVariant::Plain => {}
        FdVariant::Optimized => {
            d.set_inline("fd_classifier", true);
            d.set_full_unroll("fd_classifier/loop0");
            d.set_full_unroll("face_detect/loop0"); // window positions
            d.set_full_unroll("face_detect/loop1"); // window copy
            partition_all(&mut d);
        }
        FdVariant::NoInline | FdVariant::Replicated => {
            // The paper's step 1 removes *only* the inlining. In our flow
            // the relief mechanism this exposes is structural: the flat
            // inlined design serializes on memory ports, which makes the
            // binder share multipliers behind wide input muxes (wiring
            // concentrators), while per-call classifier instances keep
            // private, directly-wired operators.
            d.set_inline("fd_classifier", false);
            d.set_full_unroll("fd_classifier/loop0");
            d.set_full_unroll("face_detect/loop0");
            d.set_full_unroll("face_detect/loop1");
            partition_all(&mut d);
            if variant == FdVariant::Replicated {
                for buf in ["wa", "wb", "wc"] {
                    d.set_partition(&format!("face_detect/{buf}"), Partition::Complete);
                }
            }
        }
    }
    d
}

fn partition_all(d: &mut Directives) {
    d.set_partition("face_detect/win", Partition::Complete);
    d.set_partition("face_detect/img", Partition::Cyclic(8));
    for k in 0..STAGES {
        d.set_partition(&format!("face_detect/w{k}"), Partition::Complete);
    }
    d.set_partition("fd_classifier/win", Partition::Complete);
    d.set_partition("fd_classifier/wgt", Partition::Complete);
}

/// The benchmark for a variant.
pub fn benchmark(variant: FdVariant) -> Benchmark {
    let replicate = variant == FdVariant::Replicated;
    Benchmark {
        name: format!("face_detection_{variant:?}").to_lowercase(),
        source: source(replicate),
        directives: directives(variant),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    #[test]
    fn all_variants_compile() {
        for v in [
            FdVariant::Plain,
            FdVariant::Optimized,
            FdVariant::NoInline,
            FdVariant::Replicated,
        ] {
            let m = benchmark(v)
                .build()
                .unwrap_or_else(|e| panic!("{v:?}: {e}"));
            assert!(m.total_ops() > 20, "{v:?} too small");
        }
    }

    #[test]
    fn optimized_inlines_everything() {
        let m = benchmark(FdVariant::Optimized).build().unwrap();
        let top = m.function_by_name("face_detect").unwrap();
        assert!(top.call_sites().is_empty(), "cascade must be inlined");
        // Fully unrolled MAC array.
        let h = top.kind_histogram();
        assert_eq!(
            h[OpKind::Mul.index()] as usize,
            STAGES * WIN * POSITIONS,
            "one multiplier per (stage, pixel, position)"
        );
    }

    #[test]
    fn no_inline_keeps_call_sites() {
        let m = benchmark(FdVariant::NoInline).build().unwrap();
        let top = m.function_by_name("face_detect").unwrap();
        assert!(!top.call_sites().is_empty());
    }

    #[test]
    fn replicated_has_two_window_buffers() {
        let m = benchmark(FdVariant::Replicated).build().unwrap();
        let top = m.function_by_name("face_detect").unwrap();
        assert!(top.array_by_name("wa").is_some());
        assert!(top.array_by_name("wb").is_some());
    }

    #[test]
    fn plain_is_fully_rolled() {
        let m = benchmark(FdVariant::Plain).build().unwrap();
        let top = m.function_by_name("face_detect").unwrap();
        assert!(top.body.loop_count() >= 2, "loops stay rolled");
        let h = top.kind_histogram();
        assert!(h[OpKind::Mul.index()] <= 2, "no MAC replication");
    }
}
