//! Synthetic **Optical Flow**: a Lucas–Kanade-style stencil — spatial and
//! temporal gradients over two frames, multiplied and accumulated per pixel.

use crate::{Benchmark, Preset};
use hls_ir::directives::{Directives, Partition};
use std::fmt::Write;

/// Frame edge length (frames are `SIZE x SIZE`).
pub const SIZE: usize = 16;

/// The kernel source.
pub fn source() -> String {
    let mut s = String::new();
    let n = SIZE * SIZE;
    let inner = SIZE - 1;
    let _ = writeln!(s, "int32 optical_flow(int16 f0[{n}], int16 f1[{n}]) {{");
    let _ = writeln!(s, "    int32 sum_u = 0;");
    let _ = writeln!(s, "    int32 sum_v = 0;");
    let _ = writeln!(s, "    for (y = 1; y < {inner}; y++) {{");
    let _ = writeln!(s, "        for (x = 1; x < {inner}; x++) {{");
    let _ = writeln!(s, "            int32 idx = y * {SIZE} + x;");
    let _ = writeln!(s, "            int32 ix = f0[idx + 1] - f0[idx - 1];");
    let _ = writeln!(
        s,
        "            int32 iy = f0[idx + {SIZE}] - f0[idx - {SIZE}];"
    );
    let _ = writeln!(s, "            int32 it = f1[idx] - f0[idx];");
    let _ = writeln!(s, "            sum_u = sum_u + ix * it;");
    let _ = writeln!(s, "            sum_v = sum_v + iy * it;");
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return sum_u + sum_v;");
    let _ = writeln!(s, "}}");
    s
}

/// Preset directives.
pub fn directives(preset: Preset) -> Directives {
    let mut d = Directives::new();
    if preset == Preset::Optimized {
        d.set_full_unroll("optical_flow/loop1"); // inner row
        d.set_pipeline("optical_flow/loop0", 2);
        d.set_partition("optical_flow/f0", Partition::Cyclic(8));
        d.set_partition("optical_flow/f1", Partition::Cyclic(8));
    }
    d
}

/// The benchmark for a preset.
pub fn benchmark(preset: Preset) -> Benchmark {
    Benchmark {
        name: format!("optical_flow_{preset:?}").to_lowercase(),
        source: source(),
        directives: directives(preset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    #[test]
    fn stencil_reads_five_points() {
        let m = benchmark(Preset::Plain).build().unwrap();
        let h = m.top_function().kind_histogram();
        assert!(h[OpKind::Load.index()] >= 6, "stencil neighborhood loads");
        assert!(h[OpKind::Mul.index()] >= 2, "two gradient products");
    }

    #[test]
    fn optimized_unrolls_inner_row() {
        let plain = benchmark(Preset::Plain).build().unwrap().total_ops();
        let opt = benchmark(Preset::Optimized).build().unwrap().total_ops();
        assert!(
            opt > plain * 5,
            "row unroll multiplies ops: {opt} vs {plain}"
        );
    }
}
