//! # rosetta-gen
//!
//! Synthetic MiniHLS versions of the six Rosetta benchmark kernels the paper
//! builds its dataset from (face detection, digit recognition, spam
//! filtering, BNN, 3D rendering, optical flow), with directive presets
//! matching the paper's implementation variants, plus the paper's three
//! benchmark groupings (§IV: Face Detection alone; Digit Recognition + Spam
//! Filtering combined; BNN + 3D Rendering + Optical Flow combined).
//!
//! The generators reproduce the *dataflow shapes* that drive congestion —
//! unrolled multiply-accumulate trees, classifier cascades fanning out from
//! completely partitioned arrays, popcount forests, stencil pipelines — not
//! the pixel-exact algorithms (see DESIGN.md, substitution table).
//!
//! ```
//! use rosetta_gen::face_detection;
//!
//! let bench = face_detection::benchmark(face_detection::FdVariant::Optimized);
//! let module = bench.build()?;
//! assert!(module.total_ops() > 100);
//! # Ok::<(), hls_ir::frontend::CompileError>(())
//! ```

pub mod bnn;
pub mod digit_recognition;
pub mod face_detection;
pub mod optical_flow;
pub mod rendering_3d;
pub mod spam_filter;
pub mod suite;

use hls_ir::directives::Directives;
use hls_ir::frontend::{compile_with_directives, CompileError};
use hls_ir::Module;

/// A generic optimization preset shared by most kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// No directives: rolled loops, unpartitioned arrays.
    Plain,
    /// The paper's optimized configuration: inlining, unrolling,
    /// array partitioning.
    Optimized,
}

/// A ready-to-compile benchmark: MiniHLS source plus a directive overlay.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Design name (used in reports).
    pub name: String,
    /// MiniHLS source text.
    pub source: String,
    /// Directive overlay applied on top of any source pragmas.
    pub directives: Directives,
}

impl Benchmark {
    /// Compile into an IR module with the overlay applied.
    ///
    /// # Errors
    /// Returns a [`CompileError`] if the generated source is invalid (a bug
    /// in the generator).
    pub fn build(&self) -> Result<Module, CompileError> {
        compile_with_directives(&self.source, &self.name, &self.directives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_compile_in_both_presets() {
        for preset in [Preset::Plain, Preset::Optimized] {
            for bench in [
                digit_recognition::benchmark(preset),
                spam_filter::benchmark(preset),
                bnn::benchmark(preset),
                rendering_3d::benchmark(preset),
                optical_flow::benchmark(preset),
            ] {
                let m = bench.build().unwrap_or_else(|e| {
                    panic!("{} failed to compile ({preset:?}): {e}", bench.name)
                });
                assert!(m.total_ops() > 10, "{} too small", bench.name);
            }
        }
    }

    #[test]
    fn optimized_presets_generate_more_parallel_ops() {
        for (plain, opt) in [
            (
                digit_recognition::benchmark(Preset::Plain),
                digit_recognition::benchmark(Preset::Optimized),
            ),
            (
                bnn::benchmark(Preset::Plain),
                bnn::benchmark(Preset::Optimized),
            ),
        ] {
            let p = plain.build().unwrap().total_ops();
            let o = opt.build().unwrap().total_ops();
            assert!(o > p, "optimized should unroll: {o} <= {p}");
        }
    }
}
