//! Synthetic **3D Rendering**: triangle rasterization at one pixel — edge
//! functions (cross products) per triangle, an inside test, and a z-buffer
//! update, matching the Rosetta kernel's multiply-heavy shape.

use crate::{Benchmark, Preset};
use hls_ir::directives::{Directives, Partition};
use std::fmt::Write;

/// Number of triangles.
pub const TRIANGLES: usize = 24;
/// Coordinates per triangle (x0 y0 x1 y1 x2 y2 z).
pub const COORDS: usize = 7;

/// The kernel source.
pub fn source() -> String {
    let mut s = String::new();
    let len = TRIANGLES * COORDS;
    let _ = writeln!(
        s,
        "int32 render3d(int16 tris[{len}], int16 px, int16 py, int16 zbuf[{TRIANGLES}]) {{"
    );
    let _ = writeln!(s, "    int32 hits = 0;");
    let _ = writeln!(s, "    for (t = 0; t < {TRIANGLES}; t++) {{");
    let _ = writeln!(s, "        int16 x0 = tris[t * {COORDS}];");
    let _ = writeln!(s, "        int16 y0 = tris[t * {COORDS} + 1];");
    let _ = writeln!(s, "        int16 x1 = tris[t * {COORDS} + 2];");
    let _ = writeln!(s, "        int16 y1 = tris[t * {COORDS} + 3];");
    let _ = writeln!(s, "        int16 x2 = tris[t * {COORDS} + 4];");
    let _ = writeln!(s, "        int16 y2 = tris[t * {COORDS} + 5];");
    let _ = writeln!(s, "        int16 z = tris[t * {COORDS} + 6];");
    // Three edge functions: (b-a) x (p-a).
    let _ = writeln!(
        s,
        "        int32 e0 = (x1 - x0) * (py - y0) - (y1 - y0) * (px - x0);"
    );
    let _ = writeln!(
        s,
        "        int32 e1 = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1);"
    );
    let _ = writeln!(
        s,
        "        int32 e2 = (x0 - x2) * (py - y2) - (y0 - y2) * (px - x2);"
    );
    let _ = writeln!(
        s,
        "        int32 inside = (e0 >= 0 && e1 >= 0 && e2 >= 0) ? 1 : 0;"
    );
    let _ = writeln!(s, "        if (inside > 0) {{");
    let _ = writeln!(s, "            int16 old = zbuf[t];");
    let _ = writeln!(s, "            zbuf[t] = min(old, z);");
    let _ = writeln!(s, "            hits = hits + 1;");
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return hits;");
    let _ = writeln!(s, "}}");
    s
}

/// Preset directives.
pub fn directives(preset: Preset) -> Directives {
    let mut d = Directives::new();
    if preset == Preset::Optimized {
        d.set_unroll("render3d/loop0", 4);
        // One bank per coordinate: `t*7 + c` always lands in bank `c`.
        d.set_partition("render3d/tris", Partition::Cyclic(7));
        d.set_partition("render3d/zbuf", Partition::Complete);
    }
    d
}

/// The benchmark for a preset.
pub fn benchmark(preset: Preset) -> Benchmark {
    Benchmark {
        name: format!("rendering_3d_{preset:?}").to_lowercase(),
        source: source(),
        directives: directives(preset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    #[test]
    fn edge_functions_generate_multiplies() {
        let m = benchmark(Preset::Optimized).build().unwrap();
        let h = m.top_function().kind_histogram();
        // 6 multiplies per triangle x 4 unrolled (plus index arithmetic).
        assert!(
            h[OpKind::Mul.index()] >= 24,
            "muls = {}",
            h[OpKind::Mul.index()]
        );
    }

    #[test]
    fn conditional_zbuf_update_is_predicated() {
        let m = benchmark(Preset::Plain).build().unwrap();
        let h = m.top_function().kind_histogram();
        assert!(h[OpKind::Select.index()] >= 2, "min() + predicated store");
        assert!(h[OpKind::Store.index()] >= 1);
    }
}
