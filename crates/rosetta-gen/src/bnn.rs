//! Synthetic **BNN**: a binarized fully-connected layer — per-neuron
//! XNOR-popcount accumulation over packed 64-bit weight words, then a sign
//! activation. Popcount forests are classic congestion generators.

use crate::{Benchmark, Preset};
use hls_ir::directives::{Directives, Partition};
use std::fmt::Write;

/// Output neurons.
pub const NEURONS: usize = 24;
/// 64-bit words per neuron input.
pub const WORDS: usize = 4;

/// The kernel source.
pub fn source() -> String {
    let mut s = String::new();
    let wlen = NEURONS * WORDS;
    let _ = writeln!(s, "int32 bnn(int64 act[{WORDS}], int64 wts[{wlen}]) {{");
    let _ = writeln!(s, "    int32 fired = 0;");
    let _ = writeln!(s, "    for (n = 0; n < {NEURONS}; n++) {{");
    let _ = writeln!(s, "        int32 acc = 0;");
    let _ = writeln!(s, "        for (k = 0; k < {WORDS}; k++) {{");
    let _ = writeln!(
        s,
        "            acc = acc + popcount(act[k] ^ wts[n * {WORDS} + k]);"
    );
    let _ = writeln!(s, "        }}");
    let _ = writeln!(s, "        fired = fired + (acc > {} ? 1 : 0);", WORDS * 32);
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "    return fired;");
    let _ = writeln!(s, "}}");
    s
}

/// Preset directives.
pub fn directives(preset: Preset) -> Directives {
    let mut d = Directives::new();
    if preset == Preset::Optimized {
        d.set_full_unroll("bnn/loop1"); // words
        d.set_unroll("bnn/loop0", 4); // neurons
        d.set_partition("bnn/act", Partition::Complete);
        d.set_partition("bnn/wts", Partition::Cyclic(16));
    }
    d
}

/// The benchmark for a preset.
pub fn benchmark(preset: Preset) -> Benchmark {
    Benchmark {
        name: format!("bnn_{preset:?}").to_lowercase(),
        source: source(),
        directives: directives(preset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    #[test]
    fn optimized_builds_popcount_forest() {
        let m = benchmark(Preset::Optimized).build().unwrap();
        let h = m.top_function().kind_histogram();
        // 4 neurons x 4 words unrolled = 16 XORs per iteration.
        assert!(h[OpKind::Xor.index()] >= 16);
        assert!(h[OpKind::Add.index()] >= 16 * 6, "SWAR adder forest");
    }

    #[test]
    fn plain_stays_rolled() {
        let m = benchmark(Preset::Plain).build().unwrap();
        let top = m.top_function();
        assert_eq!(top.body.loop_count(), 2);
        let h = top.kind_histogram();
        assert!(h[OpKind::Xor.index()] <= 1);
    }
}
