//! The paper's benchmark groupings (§IV): "Face Detection … is tested
//! individually. Digit Recognition and Spam Filtering are invoked by the
//! same function and the rest three applications, namely, BNN, 3D Rendering
//! and Optical Flow, are tested in an integrated function."

use crate::{
    bnn, digit_recognition, face_detection, optical_flow, rendering_3d, spam_filter, Benchmark,
    Preset,
};
use std::fmt::Write;

/// The Face Detection group (tested individually).
pub fn face_detection_group(preset: Preset) -> Benchmark {
    match preset {
        Preset::Plain => face_detection::benchmark(face_detection::FdVariant::Plain),
        Preset::Optimized => face_detection::benchmark(face_detection::FdVariant::Optimized),
    }
}

/// Digit Recognition + Spam Filtering combined under one top function.
pub fn digit_spam_group(preset: Preset) -> Benchmark {
    let dr = digit_recognition::benchmark(preset);
    let sf = spam_filter::benchmark(preset);
    let mut source = String::new();
    source.push_str(&dr.source);
    source.push_str(&sf.source);
    let sf_total = spam_filter::DIM * spam_filter::SAMPLES;
    let _ = writeln!(
        source,
        "int32 top_dr_sf(int64 test, int64 train[{}], int16 wvec[{}], int16 feats[{}]) {{",
        digit_recognition::TRAIN,
        spam_filter::DIM,
        sf_total
    );
    let _ = writeln!(
        source,
        "    return digit_rec(test, train) + spam_filter(wvec, feats);"
    );
    let _ = writeln!(source, "}}");
    let mut directives = dr.directives.clone();
    directives.merge(&sf.directives);
    Benchmark {
        name: format!("digit_spam_{preset:?}").to_lowercase(),
        source,
        directives,
    }
}

/// BNN + 3D Rendering + Optical Flow combined under one top function.
pub fn bnn_render_flow_group(preset: Preset) -> Benchmark {
    let b = bnn::benchmark(preset);
    let r = rendering_3d::benchmark(preset);
    let o = optical_flow::benchmark(preset);
    let mut source = String::new();
    source.push_str(&b.source);
    source.push_str(&r.source);
    source.push_str(&o.source);
    let wlen = bnn::NEURONS * bnn::WORDS;
    let tlen = rendering_3d::TRIANGLES * rendering_3d::COORDS;
    let flen = optical_flow::SIZE * optical_flow::SIZE;
    let _ = writeln!(
        source,
        "int32 top_bro(int64 act[{}], int64 wts[{}], int16 tris[{}], int16 px, int16 py, int16 zbuf[{}], int16 f0[{}], int16 f1[{}]) {{",
        bnn::WORDS,
        wlen,
        tlen,
        rendering_3d::TRIANGLES,
        flen,
        flen
    );
    let _ = writeln!(source, "    int32 a = bnn(act, wts);");
    let _ = writeln!(source, "    int32 b = render3d(tris, px, py, zbuf);");
    let _ = writeln!(source, "    int32 c = optical_flow(f0, f1);");
    let _ = writeln!(source, "    return a + b + c;");
    let _ = writeln!(source, "}}");
    let mut directives = b.directives.clone();
    directives.merge(&r.directives);
    directives.merge(&o.directives);
    Benchmark {
        name: format!("bnn_render_flow_{preset:?}").to_lowercase(),
        source,
        directives,
    }
}

/// All three groups, in the paper's order.
pub fn groups(preset: Preset) -> Vec<Benchmark> {
    vec![
        face_detection_group(preset),
        digit_spam_group(preset),
        bnn_render_flow_group(preset),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_compile_in_both_presets() {
        for preset in [Preset::Plain, Preset::Optimized] {
            for g in groups(preset) {
                let m = g
                    .build()
                    .unwrap_or_else(|e| panic!("{} ({preset:?}): {e}", g.name));
                assert!(m.total_ops() > 50, "{} too small", g.name);
            }
        }
    }

    #[test]
    fn combined_groups_call_their_kernels() {
        let m = digit_spam_group(Preset::Plain).build().unwrap();
        let top = m.function_by_name("top_dr_sf").unwrap();
        assert_eq!(top.call_sites().len(), 2);
        let m = bnn_render_flow_group(Preset::Plain).build().unwrap();
        let top = m.function_by_name("top_bro").unwrap();
        assert_eq!(top.call_sites().len(), 3);
    }

    #[test]
    fn optimized_groups_are_larger() {
        for mk in [digit_spam_group, bnn_render_flow_group] {
            let p = mk(Preset::Plain).build().unwrap().total_ops();
            let o = mk(Preset::Optimized).build().unwrap().total_ops();
            assert!(o > p, "optimized {o} vs plain {p}");
        }
    }
}
