//! # parkit
//!
//! Deterministic data parallelism over OS threads for the congestion
//! pipeline's hot paths (dataset construction, cross-validation folds,
//! grid-search points, experiment fan-out).
//!
//! The container this workspace builds in has no network access, so a
//! `rayon` dependency is off the table; this crate provides the small slice
//! of rayon the pipeline needs — an **ordered parallel map** — on top of
//! `std::thread::scope`. Two properties are guaranteed:
//!
//! 1. **Output order equals input order**, regardless of which worker
//!    finishes first, so parallel results are bit-identical to the serial
//!    path whenever the per-item function is itself deterministic.
//! 2. **Worker count is explicit and controllable**: [`num_threads`]
//!    honours the `RAYON_NUM_THREADS` environment variable (kept for
//!    ecosystem familiarity) and falls back to the machine's available
//!    parallelism.
//! 3. **Panics are isolated per item**: [`par_map_catch_threads`] catches a
//!    panicking closure at the item boundary and returns the payload as an
//!    error value in that item's slot, so one poisoned design cannot sink a
//!    whole dataset build. [`par_map_threads`] is built on top of it and
//!    re-raises the first (in input order) panic only after every other
//!    item has completed — deterministic for any worker count.
//!
//! Work is distributed dynamically (an atomic cursor over the item list),
//! so a single slow item — one large design, one expensive fold — does not
//! leave the other workers idle, which is exactly the workload shape of
//! HLS + place-and-route over a benchmark suite.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A captured panic from one item's closure invocation.
///
/// [`par_map_catch_threads`] turns a panicking item into `Err(Panicked)`
/// instead of letting the unwind cross the thread join and poison the whole
/// batch. The original payload is preserved, so callers that do want to die
/// can [`Panicked::resume`] with full fidelity (typed payloads like
/// faultkit's marker structs survive the round trip).
pub struct Panicked {
    payload: Box<dyn Any + Send + 'static>,
}

impl Panicked {
    fn new(payload: Box<dyn Any + Send + 'static>) -> Panicked {
        Panicked { payload }
    }

    /// Human-readable panic message (`&str`/`String` payloads; anything
    /// else renders as a placeholder).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// The original panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send + 'static> {
        self.payload
    }

    /// Re-raise the captured panic on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }
}

impl fmt::Debug for Panicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Panicked({:?})", self.message())
    }
}

impl fmt::Display for Panicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "panic: {}", self.message())
    }
}

/// The worker count used by [`par_map`]: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` with up to [`num_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count. `threads == 1` runs inline on
/// the calling thread (the serial reference path).
///
/// # Panics
/// If `f` panics for any item, every other item still completes, and the
/// panic of the **first item in input order** is then re-raised with its
/// original payload — identical behaviour for 1 and N workers. (Before this
/// existed, a worker panic unwound across the scope join and poisoned the
/// whole batch, discarding every completed item.) Callers that want panics
/// as values instead use [`par_map_catch_threads`].
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic = None;
    for result in par_map_catch_threads(threads, items, f) {
        match result {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        p.resume();
    }
    out
}

/// [`par_map_catch_threads`] with the default worker count.
pub fn par_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, Panicked>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_catch_threads(num_threads(), items, f)
}

/// Map `f` over `items` with up to `threads` workers, catching panics **per
/// item**: a panicking closure yields `Err(`[`Panicked`]`)` in that item's
/// slot while every other item completes normally.
///
/// Output order equals input order, and the Ok/Err classification of every
/// slot is bit-identical for 1 vs N workers (the per-item function decides
/// it, not scheduling).
///
/// The closure runs behind an `AssertUnwindSafe` boundary. That is sound
/// here because the boundary is per *item*: `f` only borrows `items`
/// immutably, and an item whose invocation unwound contributes nothing but
/// the payload — no half-mutated state can be observed by other items.
/// Closures that mutate shared state through interior mutability must keep
/// that state consistent across unwinds themselves.
pub fn par_map_catch_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<Result<R, Panicked>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let call = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(Panicked::new);
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(call).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, Panicked>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let value = call(item);
                *slots[i].lock().unwrap() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot filled by a worker")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Bounded three-stage pipeline
// ---------------------------------------------------------------------------

/// A bounded MPMC queue (mutex + condvars) linking two pipeline stages.
/// `send` blocks while the queue is at capacity — that is the pipeline's
/// backpressure — and `recv` returns `None` once every producer has
/// deregistered and the queue has drained.
struct Channel<M> {
    state: Mutex<ChannelState<M>>,
    not_empty: std::sync::Condvar,
    not_full: std::sync::Condvar,
    cap: usize,
}

struct ChannelState<M> {
    buf: std::collections::VecDeque<M>,
    producers: usize,
}

impl<M> Channel<M> {
    fn new(cap: usize, producers: usize) -> Channel<M> {
        Channel {
            state: Mutex::new(ChannelState {
                buf: std::collections::VecDeque::with_capacity(cap),
                producers,
            }),
            not_empty: std::sync::Condvar::new(),
            not_full: std::sync::Condvar::new(),
            cap,
        }
    }

    fn send(&self, m: M) {
        let mut st = self.state.lock().unwrap();
        while st.buf.len() >= self.cap {
            st = self.not_full.wait(st).unwrap();
        }
        st.buf.push_back(m);
        self.not_empty.notify_one();
    }

    fn recv(&self) -> Option<M> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(m) = st.buf.pop_front() {
                self.not_full.notify_one();
                return Some(m);
            }
            if st.producers == 0 {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// One producer is done; the last one out wakes every blocked consumer.
    fn close_producer(&self) {
        let mut st = self.state.lock().unwrap();
        st.producers -= 1;
        if st.producers == 0 {
            self.not_empty.notify_all();
        }
    }
}

/// Per-stage worker-pool sizes for [`pipeline_map`]: `[stage1, stage2,
/// stage3]`. Each stage gets its own pool so a slow middle stage cannot
/// starve the ends.
pub type StagePools = [usize; 3];

/// Map every item through three stages with cross-item overlap: item N+1
/// can be in stage 1 while item N is in stage 2 and item N-1 in stage 3.
/// The congestion pipeline uses this to overlap HLS of one design with
/// place/route of the previous and feature extraction of the one before.
///
/// Items enter stage 1 in input order (an atomic cursor, as in
/// [`par_map_threads`]); stages are linked by bounded queues of capacity
/// `depth`, so a stalled downstream stage backpressures upstream instead of
/// buffering unboundedly. Output order equals input order, and because
/// each item's journey through the stages is independent of scheduling,
/// results are **bit-identical to running the three stages back-to-back
/// per item** — the same determinism contract as `par_map`.
///
/// Stages 2 and 3 also receive the original item (`&T`), so later stages
/// can read item context without stage 1 threading it through its return
/// value.
///
/// # Panics
/// Re-raises the first (in input order) per-item panic after every other
/// item completes, exactly like [`par_map_threads`]. Use
/// [`pipeline_map_catch`] for panics as values.
pub fn pipeline_map<T, A, B, R, F1, F2, F3>(
    pools: StagePools,
    depth: usize,
    items: &[T],
    s1: F1,
    s2: F2,
    s3: F3,
) -> Vec<R>
where
    T: Sync,
    A: Send,
    B: Send,
    R: Send,
    F1: Fn(&T) -> A + Sync,
    F2: Fn(&T, A) -> B + Sync,
    F3: Fn(&T, B) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic = None;
    for result in pipeline_map_catch(pools, depth, items, s1, s2, s3) {
        match result {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        p.resume();
    }
    out
}

/// [`pipeline_map`] with panics caught **per item per stage**: a panic in
/// any stage yields `Err(`[`Panicked`]`)` in that item's output slot and
/// skips its remaining stages; every other item is unaffected. The Ok/Err
/// classification of every slot is identical for any pool sizes and any
/// queue depth.
pub fn pipeline_map_catch<T, A, B, R, F1, F2, F3>(
    pools: StagePools,
    depth: usize,
    items: &[T],
    s1: F1,
    s2: F2,
    s3: F3,
) -> Vec<Result<R, Panicked>>
where
    T: Sync,
    A: Send,
    B: Send,
    R: Send,
    F1: Fn(&T) -> A + Sync,
    F2: Fn(&T, A) -> B + Sync,
    F3: Fn(&T, B) -> R + Sync,
{
    // The same per-item unwind boundary as `par_map_catch_threads`: sound
    // because each catch wraps exactly one item's stage invocation, and an
    // item that unwound contributes only its payload.
    let run1 = |t: &T| catch_unwind(AssertUnwindSafe(|| s1(t))).map_err(Panicked::new);
    let run2 = |t: &T, a: A| catch_unwind(AssertUnwindSafe(|| s2(t, a))).map_err(Panicked::new);
    let run3 = |t: &T, b: B| catch_unwind(AssertUnwindSafe(|| s3(t, b))).map_err(Panicked::new);

    if items.is_empty() {
        return Vec::new();
    }
    if items.len() == 1 {
        // Nothing to overlap; run inline.
        let t = &items[0];
        let r = run1(t).and_then(|a| run2(t, a)).and_then(|b| run3(t, b));
        return vec![r];
    }

    let depth = depth.max(1);
    let p1 = pools[0].clamp(1, items.len());
    let p2 = pools[1].clamp(1, items.len());
    let p3 = pools[2].clamp(1, items.len());

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, Panicked>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    let ch12: Channel<(usize, A)> = Channel::new(depth, p1);
    let ch23: Channel<(usize, B)> = Channel::new(depth, p2);

    std::thread::scope(|scope| {
        for _ in 0..p1 {
            scope.spawn(|| {
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    match run1(item) {
                        Ok(a) => ch12.send((i, a)),
                        Err(p) => *slots[i].lock().unwrap() = Some(Err(p)),
                    }
                }
                ch12.close_producer();
            });
        }
        for _ in 0..p2 {
            scope.spawn(|| {
                while let Some((i, a)) = ch12.recv() {
                    match run2(&items[i], a) {
                        Ok(b) => ch23.send((i, b)),
                        Err(p) => *slots[i].lock().unwrap() = Some(Err(p)),
                    }
                }
                ch23.close_producer();
            });
        }
        for _ in 0..p3 {
            scope.spawn(|| {
                while let Some((i, b)) = ch23.recv() {
                    *slots[i].lock().unwrap() = Some(run3(&items[i], b));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot filled by a pipeline stage")
        })
        .collect()
}

/// Map `f` over `0..n` in parallel, preserving index order.
pub fn par_map_range<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_threads(threads, &indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_threads(8, &items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_path() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map_threads(1, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(13));
        let parallel = par_map_threads(7, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(13));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..103).collect();
        let out = par_map_threads(4, &items, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 103);
        assert_eq!(out.len(), 103);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        par_map_threads(4, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn par_map_range_is_indexed() {
        assert_eq!(par_map_range(3, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    /// Marker in test panic messages so the quiet hook below can drop the
    /// default "thread panicked" stderr spam without hiding real failures.
    const TEST_PANIC: &str = "parkit-test-panic";

    fn quiet_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(TEST_PANIC))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<String>()
                            .map(|s| s.contains(TEST_PANIC))
                    })
                    .unwrap_or(false);
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn panics_are_caught_per_item_and_ordered() {
        quiet_panics();
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_catch_threads(8, &items, |&x| {
            if x % 10 == 3 {
                panic!("{TEST_PANIC} at {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let p = r.as_ref().unwrap_err();
                assert!(p.message().contains(&format!("at {i}")), "{p:?}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn catch_classification_identical_for_1_and_n_workers() {
        quiet_panics();
        let items: Vec<u32> = (0..97).collect();
        let f = |&x: &u32| {
            if x % 7 == 0 {
                panic!("{TEST_PANIC} {x}");
            }
            x + 1
        };
        let flatten = |v: Vec<Result<u32, Panicked>>| -> Vec<Result<u32, String>> {
            v.into_iter().map(|r| r.map_err(|p| p.message())).collect()
        };
        let serial = flatten(par_map_catch_threads(1, &items, f));
        let parallel = flatten(par_map_catch_threads(6, &items, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_reraises_first_panic_in_input_order_with_payload() {
        quiet_panics();
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_threads(4, &items, |&x| {
                // Two panicking items; the *lower index* must win
                // regardless of which worker hits one first.
                if x == 9 || x == 21 {
                    panic!("{TEST_PANIC} index {x}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            });
        }))
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .expect("string payload")
            .clone();
        assert!(msg.contains("index 9"), "first in input order wins: {msg}");
        // Every non-panicking item still ran — nothing was poisoned.
        assert_eq!(completed.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn pipeline_preserves_order_and_matches_serial_composition() {
        let items: Vec<u64> = (0..321).collect();
        let s1 = |&x: &u64| x.wrapping_mul(0x9E3779B9);
        let s2 = |_: &u64, a: u64| a.rotate_left(13);
        let s3 = |&x: &u64, b: u64| b ^ x;
        let expect: Vec<u64> = items.iter().map(|x| s3(x, s2(x, s1(x)))).collect();
        for pools in [[1, 1, 1], [2, 3, 2], [8, 8, 8]] {
            for depth in [1, 2, 16] {
                let got = pipeline_map(pools, depth, &items, s1, s2, s3);
                assert_eq!(got, expect, "pools {pools:?} depth {depth}");
            }
        }
    }

    #[test]
    fn pipeline_stages_pass_the_original_item() {
        let items = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let out = pipeline_map(
            [1, 1, 1],
            2,
            &items,
            |s: &String| s.len(),
            |s: &String, n| format!("{s}:{n}"),
            |s: &String, acc| format!("{acc}:{}", s.to_uppercase()),
        );
        assert_eq!(out, vec!["a:1:A", "bb:2:BB", "ccc:3:CCC"]);
    }

    #[test]
    fn pipeline_overlaps_stages_across_items() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // With single-item stage pools and sleeps, overlap shows up as
        // multiple distinct worker threads touching the trace.
        let ids = Mutex::new(HashSet::new());
        let tag = |ids: &Mutex<HashSet<std::thread::ThreadId>>| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        let items: Vec<u32> = (0..24).collect();
        pipeline_map(
            [1, 1, 1],
            2,
            &items,
            |&x: &u32| {
                tag(&ids);
                x
            },
            |_, a: u32| {
                tag(&ids);
                a
            },
            |_, b: u32| {
                tag(&ids);
                b
            },
        );
        assert!(
            ids.lock().unwrap().len() >= 3,
            "each stage runs on its own worker"
        );
    }

    #[test]
    fn pipeline_catches_panics_per_stage_and_skips_downstream() {
        quiet_panics();
        let ran_stage3 = AtomicUsize::new(0);
        let items: Vec<usize> = (0..40).collect();
        let out = pipeline_map_catch(
            [2, 2, 2],
            2,
            &items,
            |&x: &usize| {
                if x % 10 == 3 {
                    panic!("{TEST_PANIC} s1 at {x}");
                }
                x
            },
            |_, a: usize| {
                if a % 10 == 7 {
                    panic!("{TEST_PANIC} s2 at {a}");
                }
                a
            },
            |_, b: usize| {
                ran_stage3.fetch_add(1, Ordering::Relaxed);
                b * 2
            },
        );
        assert_eq!(out.len(), 40);
        for (i, r) in out.iter().enumerate() {
            match i % 10 {
                3 | 7 => {
                    let p = r.as_ref().unwrap_err();
                    assert!(p.message().contains(&format!("at {i}")), "{p:?}");
                }
                _ => assert_eq!(*r.as_ref().unwrap(), i * 2),
            }
        }
        // Panicked items never reached stage 3.
        assert_eq!(ran_stage3.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn pipeline_classification_identical_across_pools_and_depths() {
        quiet_panics();
        let items: Vec<u32> = (0..53).collect();
        let run = |pools: StagePools, depth: usize| -> Vec<Result<u32, String>> {
            pipeline_map_catch(
                pools,
                depth,
                &items,
                |&x: &u32| x,
                |_, a: u32| {
                    if a % 9 == 4 {
                        panic!("{TEST_PANIC} {a}");
                    }
                    a
                },
                |_, b: u32| b + 1,
            )
            .into_iter()
            .map(|r| r.map_err(|p| p.message()))
            .collect()
        };
        let baseline = run([1, 1, 1], 1);
        for pools in [[1, 2, 1], [4, 4, 4], [8, 1, 8]] {
            for depth in [1, 3, 32] {
                assert_eq!(run(pools, depth), baseline, "pools {pools:?} depth {depth}");
            }
        }
    }

    #[test]
    fn pipeline_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(pipeline_map([2, 2, 2], 2, &empty, |&x: &u32| x, |_, a| a, |_, b| b).is_empty());
        let one = pipeline_map(
            [2, 2, 2],
            2,
            &[7u32],
            |&x: &u32| x,
            |_, a: u32| a + 1,
            |_, b: u32| b * 2,
        );
        assert_eq!(one, vec![16]);
    }

    #[test]
    fn typed_panic_payloads_survive_the_round_trip() {
        quiet_panics();
        #[derive(Debug, PartialEq)]
        struct Marker(u32);
        let items = [1u32];
        let out = par_map_catch_threads(1, &items, |_| {
            // Typed payloads must survive for supervisor downcasting; the
            // quiet hook can't match these, so silence via the marker-free
            // path is acceptable for this single case.
            std::panic::panic_any(Marker(5));
            #[allow(unreachable_code)]
            0u32
        });
        let payload = out.into_iter().next().unwrap().unwrap_err().into_payload();
        assert_eq!(payload.downcast_ref::<Marker>(), Some(&Marker(5)));
    }
}
