//! # parkit
//!
//! Deterministic data parallelism over OS threads for the congestion
//! pipeline's hot paths (dataset construction, cross-validation folds,
//! grid-search points, experiment fan-out).
//!
//! The container this workspace builds in has no network access, so a
//! `rayon` dependency is off the table; this crate provides the small slice
//! of rayon the pipeline needs — an **ordered parallel map** — on top of
//! `std::thread::scope`. Two properties are guaranteed:
//!
//! 1. **Output order equals input order**, regardless of which worker
//!    finishes first, so parallel results are bit-identical to the serial
//!    path whenever the per-item function is itself deterministic.
//! 2. **Worker count is explicit and controllable**: [`num_threads`]
//!    honours the `RAYON_NUM_THREADS` environment variable (kept for
//!    ecosystem familiarity) and falls back to the machine's available
//!    parallelism.
//! 3. **Panics are isolated per item**: [`par_map_catch_threads`] catches a
//!    panicking closure at the item boundary and returns the payload as an
//!    error value in that item's slot, so one poisoned design cannot sink a
//!    whole dataset build. [`par_map_threads`] is built on top of it and
//!    re-raises the first (in input order) panic only after every other
//!    item has completed — deterministic for any worker count.
//!
//! Work is distributed dynamically (an atomic cursor over the item list),
//! so a single slow item — one large design, one expensive fold — does not
//! leave the other workers idle, which is exactly the workload shape of
//! HLS + place-and-route over a benchmark suite.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A captured panic from one item's closure invocation.
///
/// [`par_map_catch_threads`] turns a panicking item into `Err(Panicked)`
/// instead of letting the unwind cross the thread join and poison the whole
/// batch. The original payload is preserved, so callers that do want to die
/// can [`Panicked::resume`] with full fidelity (typed payloads like
/// faultkit's marker structs survive the round trip).
pub struct Panicked {
    payload: Box<dyn Any + Send + 'static>,
}

impl Panicked {
    fn new(payload: Box<dyn Any + Send + 'static>) -> Panicked {
        Panicked { payload }
    }

    /// Human-readable panic message (`&str`/`String` payloads; anything
    /// else renders as a placeholder).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// The original panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send + 'static> {
        self.payload
    }

    /// Re-raise the captured panic on the current thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }
}

impl fmt::Debug for Panicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Panicked({:?})", self.message())
    }
}

impl fmt::Display for Panicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "panic: {}", self.message())
    }
}

/// The worker count used by [`par_map`]: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` with up to [`num_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count. `threads == 1` runs inline on
/// the calling thread (the serial reference path).
///
/// # Panics
/// If `f` panics for any item, every other item still completes, and the
/// panic of the **first item in input order** is then re-raised with its
/// original payload — identical behaviour for 1 and N workers. (Before this
/// existed, a worker panic unwound across the scope join and poisoned the
/// whole batch, discarding every completed item.) Callers that want panics
/// as values instead use [`par_map_catch_threads`].
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    let mut first_panic = None;
    for result in par_map_catch_threads(threads, items, f) {
        match result {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_panic {
        p.resume();
    }
    out
}

/// [`par_map_catch_threads`] with the default worker count.
pub fn par_map_catch<T, R, F>(items: &[T], f: F) -> Vec<Result<R, Panicked>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_catch_threads(num_threads(), items, f)
}

/// Map `f` over `items` with up to `threads` workers, catching panics **per
/// item**: a panicking closure yields `Err(`[`Panicked`]`)` in that item's
/// slot while every other item completes normally.
///
/// Output order equals input order, and the Ok/Err classification of every
/// slot is bit-identical for 1 vs N workers (the per-item function decides
/// it, not scheduling).
///
/// The closure runs behind an `AssertUnwindSafe` boundary. That is sound
/// here because the boundary is per *item*: `f` only borrows `items`
/// immutably, and an item whose invocation unwound contributes nothing but
/// the payload — no half-mutated state can be observed by other items.
/// Closures that mutate shared state through interior mutability must keep
/// that state consistent across unwinds themselves.
pub fn par_map_catch_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<Result<R, Panicked>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let call = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(Panicked::new);
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(call).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, Panicked>>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let value = call(item);
                *slots[i].lock().unwrap() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Map `f` over `0..n` in parallel, preserving index order.
pub fn par_map_range<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_threads(threads, &indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_threads(8, &items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_path() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map_threads(1, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(13));
        let parallel = par_map_threads(7, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(13));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..103).collect();
        let out = par_map_threads(4, &items, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 103);
        assert_eq!(out.len(), 103);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        par_map_threads(4, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn par_map_range_is_indexed() {
        assert_eq!(par_map_range(3, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    /// Marker in test panic messages so the quiet hook below can drop the
    /// default "thread panicked" stderr spam without hiding real failures.
    const TEST_PANIC: &str = "parkit-test-panic";

    fn quiet_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.contains(TEST_PANIC))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<String>()
                            .map(|s| s.contains(TEST_PANIC))
                    })
                    .unwrap_or(false);
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn panics_are_caught_per_item_and_ordered() {
        quiet_panics();
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_catch_threads(8, &items, |&x| {
            if x % 10 == 3 {
                panic!("{TEST_PANIC} at {x}");
            }
            x * 2
        });
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let p = r.as_ref().unwrap_err();
                assert!(p.message().contains(&format!("at {i}")), "{p:?}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn catch_classification_identical_for_1_and_n_workers() {
        quiet_panics();
        let items: Vec<u32> = (0..97).collect();
        let f = |&x: &u32| {
            if x % 7 == 0 {
                panic!("{TEST_PANIC} {x}");
            }
            x + 1
        };
        let flatten = |v: Vec<Result<u32, Panicked>>| -> Vec<Result<u32, String>> {
            v.into_iter().map(|r| r.map_err(|p| p.message())).collect()
        };
        let serial = flatten(par_map_catch_threads(1, &items, f));
        let parallel = flatten(par_map_catch_threads(6, &items, f));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_reraises_first_panic_in_input_order_with_payload() {
        quiet_panics();
        let completed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_threads(4, &items, |&x| {
                // Two panicking items; the *lower index* must win
                // regardless of which worker hits one first.
                if x == 9 || x == 21 {
                    panic!("{TEST_PANIC} index {x}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            });
        }))
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .expect("string payload")
            .clone();
        assert!(msg.contains("index 9"), "first in input order wins: {msg}");
        // Every non-panicking item still ran — nothing was poisoned.
        assert_eq!(completed.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn typed_panic_payloads_survive_the_round_trip() {
        quiet_panics();
        #[derive(Debug, PartialEq)]
        struct Marker(u32);
        let items = [1u32];
        let out = par_map_catch_threads(1, &items, |_| {
            // Typed payloads must survive for supervisor downcasting; the
            // quiet hook can't match these, so silence via the marker-free
            // path is acceptable for this single case.
            std::panic::panic_any(Marker(5));
            #[allow(unreachable_code)]
            0u32
        });
        let payload = out.into_iter().next().unwrap().unwrap_err().into_payload();
        assert_eq!(payload.downcast_ref::<Marker>(), Some(&Marker(5)));
    }
}
