//! # parkit
//!
//! Deterministic data parallelism over OS threads for the congestion
//! pipeline's hot paths (dataset construction, cross-validation folds,
//! grid-search points, experiment fan-out).
//!
//! The container this workspace builds in has no network access, so a
//! `rayon` dependency is off the table; this crate provides the small slice
//! of rayon the pipeline needs — an **ordered parallel map** — on top of
//! `std::thread::scope`. Two properties are guaranteed:
//!
//! 1. **Output order equals input order**, regardless of which worker
//!    finishes first, so parallel results are bit-identical to the serial
//!    path whenever the per-item function is itself deterministic.
//! 2. **Worker count is explicit and controllable**: [`num_threads`]
//!    honours the `RAYON_NUM_THREADS` environment variable (kept for
//!    ecosystem familiarity) and falls back to the machine's available
//!    parallelism.
//!
//! Work is distributed dynamically (an atomic cursor over the item list),
//! so a single slow item — one large design, one expensive fold — does not
//! leave the other workers idle, which is exactly the workload shape of
//! HLS + place-and-route over a benchmark suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count used by [`par_map`]: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` with up to [`num_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count. `threads == 1` runs inline on
/// the calling thread (the serial reference path).
///
/// # Panics
/// Propagates the first panic raised by `f`.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let value = f(item);
                *slots[i].lock().unwrap() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Map `f` over `0..n` in parallel, preserving index order.
pub fn par_map_range<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_threads(threads, &indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map_threads(8, &items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_path() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map_threads(1, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(13));
        let parallel = par_map_threads(7, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(13));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..103).collect();
        let out = par_map_threads(4, &items, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 103);
        assert_eq!(out.len(), 103);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        par_map_threads(4, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(ids.lock().unwrap().len() > 1, "expected >1 worker thread");
    }

    #[test]
    fn par_map_range_is_indexed() {
        assert_eq!(par_map_range(3, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
