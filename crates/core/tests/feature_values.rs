//! Hand-checked feature values: build a tiny known design, extract features
//! for specific ops, and verify individual entries against values computed
//! by hand from the paper's definitions.

use congestion_core::features::{ExtractCtx, FeatureCategory};
use congestion_core::graph::DepGraph;
use fpga_fabric::Device;
use hls_ir::frontend::compile;
use hls_ir::OpKind;
use hls_synth::{HlsFlow, HlsOptions};

/// `r = x * y` then `return r + x`: known bitwidths, known graph shape.
const SRC: &str = "int32 f(int32 x, int32 y) { return x * y + x; }";

fn setup() -> (hls_synth::SynthesizedDesign, Device) {
    let m = compile(SRC).unwrap();
    let design = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
    let device = Device::xc7z020();
    (design, device)
}

#[test]
fn bitwidth_and_optype_features_match_hand_computation() {
    let (design, device) = setup();
    let f = design.module.top_function();
    let binding = design.top_binding();
    let graph = DepGraph::build(f, Some(binding), true);
    let ctx = ExtractCtx::new(&graph, &design, f.id, &device);

    let mul = f.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
    let node = graph.node_of(mul.id);
    let feats = ctx.extract(node);

    // Feature 0: bitwidth. int32 * int32 -> 64-bit product.
    assert_eq!(feats[0], 64.0);

    // Operator type one-hot: exactly the Mul slot set.
    let r = FeatureCategory::OperatorType.range();
    for (k, kind) in OpKind::ALL.iter().enumerate() {
        let expected = if *kind == OpKind::Mul { 1.0 } else { 0.0 };
        assert_eq!(feats[r.start + k], expected, "one-hot slot for {kind}");
    }
}

#[test]
fn interconnection_features_match_hand_computation() {
    let (design, device) = setup();
    let f = design.module.top_function();
    let binding = design.top_binding();
    let graph = DepGraph::build(f, Some(binding), true);
    let ctx = ExtractCtx::new(&graph, &design, f.id, &device);

    let mul = f.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
    let node = graph.node_of(mul.id);
    let feats = ctx.extract(node);
    let r = FeatureCategory::Interconnection.range();

    // The multiply consumes x (32 wires) and y (32 wires): fan-in = 64.
    assert_eq!(feats[r.start], 64.0, "fan_in");
    // Its 64-bit product feeds only the add (which consumes all 64 bits).
    assert_eq!(feats[r.start + 1], 64.0, "fan_out");
    assert_eq!(feats[r.start + 2], 128.0, "fan_total");
    // Two predecessors (the two Read nodes), one successor (the Add).
    assert_eq!(feats[r.start + 3], 2.0, "n_pred");
    assert_eq!(feats[r.start + 4], 1.0, "n_succ");
    // Max wire: the 64-bit product edge.
    assert_eq!(feats[r.start + 6], 64.0, "max_wire");
    // max_wire / fan_in = 64/64 = 1.
    assert_eq!(feats[r.start + 7], 1.0);
}

#[test]
fn timing_features_match_charlib() {
    let (design, device) = setup();
    let f = design.module.top_function();
    let binding = design.top_binding();
    let graph = DepGraph::build(f, Some(binding), true);
    let ctx = ExtractCtx::new(&graph, &design, f.id, &device);

    let mul = f.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
    let feats = ctx.extract(graph.node_of(mul.id));
    let r = FeatureCategory::Timing.range();
    let cost = design.lib.cost_of_op(f, mul);
    assert_eq!(feats[r.start], cost.delay_ns, "delay feature = charlib");
    assert_eq!(feats[r.start + 1], cost.latency as f64, "latency feature");
    // A 64-bit product is a multi-cycle DSP operation.
    assert!(feats[r.start + 1] >= 1.0);
}

#[test]
fn global_features_are_constant_within_a_function() {
    let (design, device) = setup();
    let f = design.module.top_function();
    let binding = design.top_binding();
    let graph = DepGraph::build(f, Some(binding), true);
    let ctx = ExtractCtx::new(&graph, &design, f.id, &device);

    let r = FeatureCategory::Global.range();
    let mut reference: Option<Vec<f64>> = None;
    for (ni, node) in graph.nodes.iter().enumerate() {
        if node.is_port {
            continue;
        }
        let feats = ctx.extract(ni);
        let globals = feats[r.clone()].to_vec();
        match &reference {
            None => reference = Some(globals),
            Some(prev) => assert_eq!(&globals, prev, "globals differ at node {ni}"),
        }
    }
    // And the clock-target feature matches the flow option.
    let feats = ctx.extract((0..graph.len()).find(|&i| !graph.nodes[i].is_port).unwrap());
    assert_eq!(feats[r.start + 12], design.options.clock_ns);
}

#[test]
fn resource_features_know_the_dsp_multiplier() {
    let (design, device) = setup();
    let f = design.module.top_function();
    let binding = design.top_binding();
    let graph = DepGraph::build(f, Some(binding), true);
    let ctx = ExtractCtx::new(&graph, &design, f.id, &device);

    let mul = f.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
    let feats = ctx.extract(graph.node_of(mul.id));
    let r = FeatureCategory::Resource.range();
    // Resource layout: 25 per type, order LUT, FF, DSP, BRAM; first entry of
    // a type block is the node's own usage.
    let dsp_usage = feats[r.start + 2 * 25];
    let cost = design.lib.cost_of_op(f, mul);
    assert_eq!(dsp_usage, cost.resources.dsps as f64);
    assert!(dsp_usage >= 1.0, "64-bit product must use DSPs");
    // Utilization ratio = usage / device DSP total.
    let totals = device.totals();
    let util = feats[r.start + 2 * 25 + 1];
    assert!((util - dsp_usage / totals.dsps as f64).abs() < 1e-12);
}
