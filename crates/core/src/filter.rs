//! Marginal-operation sample filtering (paper §III-C1).
//!
//! Loop unrolling creates replicas of the same operation whose features are
//! near-identical but whose labels diverge when some replicas land at the
//! device margin where congestion is low. Within each replica group, samples
//! whose label falls far *below* the group median are dropped ("lower
//! congestion metrics are distributed at the margin of the device compared
//! to the higher values in the middle").

use crate::dataset::CongestionDataset;
use std::collections::HashMap;

/// Filter configuration.
#[derive(Debug, Clone, Copy)]
pub struct FilterOptions {
    /// Minimum replica-group size considered.
    pub min_group: usize,
    /// Drop a sample when its label is below `median × (1 − rel_drop)`.
    pub rel_drop: f64,
    /// …and the absolute gap to the median exceeds this many percent.
    pub abs_gap: f64,
}

impl Default for FilterOptions {
    fn default() -> Self {
        FilterOptions {
            min_group: 6,
            rel_drop: 0.6,
            abs_gap: 20.0,
        }
    }
}

/// The outcome of filtering.
#[derive(Debug, Clone)]
pub struct FilterReport {
    /// Samples kept.
    pub kept: CongestionDataset,
    /// Number of samples removed.
    pub removed: usize,
    /// Fraction removed (paper: ~3.4 % of all operations).
    pub removed_fraction: f64,
}

/// Apply the marginal-operation filter.
pub fn filter_marginal(data: &CongestionDataset, opts: &FilterOptions) -> FilterReport {
    // Group replicas: (design, func, replica group id).
    let mut groups: HashMap<(String, u32, u32), Vec<usize>> = HashMap::new();
    for (i, s) in data.samples.iter().enumerate() {
        if let Some(tag) = s.replica {
            groups
                .entry((s.design.clone(), s.func.0, tag.group))
                .or_default()
                .push(i);
        }
    }

    let mut drop = vec![false; data.len()];
    for idx in groups.values() {
        if idx.len() < opts.min_group {
            continue;
        }
        let mut labels: Vec<f64> = idx.iter().map(|&i| data.samples[i].average()).collect();
        labels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = labels[labels.len() / 2];
        for &i in idx {
            let v = data.samples[i].average();
            if v < median * (1.0 - opts.rel_drop) && median - v > opts.abs_gap {
                drop[i] = true;
            }
        }
    }

    let mut kept = CongestionDataset::new();
    for (i, s) in data.samples.iter().enumerate() {
        if !drop[i] {
            kept.push(s.clone(), data.features_of(i));
        }
    }
    let removed = data.len() - kept.len();
    FilterReport {
        removed,
        removed_fraction: if data.is_empty() {
            0.0
        } else {
            removed as f64 / data.len() as f64
        },
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::features::FEATURE_COUNT;
    use hls_ir::{FuncId, OpId, ReplicaTag};

    fn sample(design: &str, group: u32, index: u32, label: f64) -> Sample {
        Sample {
            design: design.into(),
            func: FuncId(0),
            op: OpId(index),
            line: 1,
            replica: Some(ReplicaTag {
                group,
                index,
                total: 8,
            }),
            vertical: label,
            horizontal: label,
        }
    }

    fn push(ds: &mut CongestionDataset, s: Sample) {
        ds.push(s, &vec![0.0; FEATURE_COUNT]);
    }

    fn unreplicated(label: f64) -> Sample {
        Sample {
            replica: None,
            ..sample("d", 0, 0, label)
        }
    }

    #[test]
    fn marginal_replicas_dropped() {
        let mut ds = CongestionDataset::new();
        for i in 0..7 {
            push(&mut ds, sample("d", 1, i, 80.0));
        }
        // One replica at the device margin with a tiny label.
        push(&mut ds, sample("d", 1, 7, 10.0));
        let rep = filter_marginal(&ds, &FilterOptions::default());
        assert_eq!(rep.removed, 1);
        assert_eq!(rep.kept.len(), 7);
        assert!((rep.removed_fraction - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn tight_groups_untouched() {
        let mut ds = CongestionDataset::new();
        for i in 0..8 {
            push(&mut ds, sample("d", 1, i, 75.0 + i as f64));
        }
        let rep = filter_marginal(&ds, &FilterOptions::default());
        assert_eq!(rep.removed, 0);
    }

    #[test]
    fn small_groups_and_unreplicated_kept() {
        let mut ds = CongestionDataset::new();
        push(&mut ds, sample("d", 1, 0, 80.0));
        push(&mut ds, sample("d", 1, 1, 1.0)); // group of 2 < min_group
        push(&mut ds, unreplicated(0.5));
        let rep = filter_marginal(&ds, &FilterOptions::default());
        assert_eq!(rep.removed, 0);
    }

    #[test]
    fn groups_do_not_mix_across_designs() {
        let mut ds = CongestionDataset::new();
        for i in 0..4 {
            push(&mut ds, sample("a", 1, i, 90.0));
        }
        for i in 0..4 {
            push(&mut ds, sample("b", 1, i, 5.0));
        }
        // Same group id, different designs: neither group has outliers.
        let rep = filter_marginal(&ds, &FilterOptions::default());
        assert_eq!(rep.removed, 0);
    }
}
