//! The operation dependency graph (paper §III-A2).
//!
//! Nodes are IR operations plus *port* nodes for the function interface;
//! edge weights are the number of wires each connection actually carries
//! ("if one of its successors takes eight of the total 32 bits … the actual
//! number of wires for this connection is eight"). Operations bound to the
//! same shared RTL module are merged into one combined node (paper Fig 4).

use hls_ir::{Function, OpId, OpKind};
use hls_synth::Binding;
use std::collections::HashMap;

/// A graph node: one IR operation, a merged group of shared operations, or
/// an interface port.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Operations represented by this node (empty for pure port nodes).
    pub ops: Vec<OpId>,
    /// Operation kind ([`OpKind::Port`] for interface nodes).
    pub kind: OpKind,
    /// Result bitwidth.
    pub bits: u16,
    /// Whether this is an interface port node.
    pub is_port: bool,
}

/// The dependency graph of one function.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// All nodes.
    pub nodes: Vec<GraphNode>,
    /// Map op arena index → node index.
    pub node_of_op: Vec<usize>,
    /// Outgoing edges: `(target node, wires)`.
    pub out: Vec<Vec<(usize, u32)>>,
    /// Incoming edges: `(source node, wires)`.
    pub inc: Vec<Vec<(usize, u32)>>,
}

impl DepGraph {
    /// Build the graph for `f`. When `merge_shared` is set, operations that
    /// share a functional unit in `binding` collapse into one node.
    pub fn build(f: &Function, binding: Option<&Binding>, merge_shared: bool) -> DepGraph {
        let n_ops = f.ops.len();
        let mut node_of_op = vec![usize::MAX; n_ops];
        let mut nodes: Vec<GraphNode> = Vec::new();

        // Assign ops to nodes, merging shared groups.
        for op in &f.ops {
            if node_of_op[op.id.index()] != usize::MAX {
                continue;
            }
            let group: Vec<OpId> = match (merge_shared, binding) {
                (true, Some(b)) => {
                    let g = b.sharing_group(op.id);
                    if g.len() > 1 {
                        g.to_vec()
                    } else {
                        vec![op.id]
                    }
                }
                _ => vec![op.id],
            };
            let node_idx = nodes.len();
            let bits = group.iter().map(|&o| f.op(o).ty.bits()).max().unwrap_or(1);
            nodes.push(GraphNode {
                ops: group.clone(),
                kind: op.kind,
                bits,
                is_port: false,
            });
            for o in group {
                node_of_op[o.index()] = node_idx;
            }
        }

        // Data edges (deduplicated per node pair by accumulating wires).
        let mut out: Vec<HashMap<usize, u32>> = vec![HashMap::new(); nodes.len()];
        for op in &f.ops {
            let dst = node_of_op[op.id.index()];
            for operand in &op.operands {
                let src = node_of_op[operand.src.index()];
                if src == dst {
                    continue; // merged self-loop
                }
                *out[src].entry(dst).or_insert(0) += operand.width as u32;
            }
        }

        // Port nodes: one per parameter; array ports connect to their
        // loads/stores, scalar ports to their Read op's node.
        let grow = |nodes: &mut Vec<GraphNode>, out: &mut Vec<HashMap<usize, u32>>| -> usize {
            nodes.push(GraphNode {
                ops: Vec::new(),
                kind: OpKind::Port,
                bits: 1,
                is_port: true,
            });
            out.push(HashMap::new());
            nodes.len() - 1
        };
        for param in &f.params {
            match param.kind {
                hls_ir::ParamKind::Scalar => {
                    let port = grow(&mut nodes, &mut out);
                    nodes[port].bits = param.ty.bits();
                    // Connect to every Read op of this parameter index.
                    for op in &f.ops {
                        if op.kind == OpKind::Read && op.name == param.name {
                            let dst = node_of_op[op.id.index()];
                            *out[port].entry(dst).or_insert(0) += param.ty.bits() as u32;
                        }
                    }
                }
                hls_ir::ParamKind::Array { array } => {
                    let port = grow(&mut nodes, &mut out);
                    let elem_bits = f.array(array).elem.bits() as u32;
                    nodes[port].bits = f.array(array).elem.bits();
                    for op in &f.ops {
                        if op.kind.is_memory() && op.array == Some(array) {
                            let dst = node_of_op[op.id.index()];
                            match op.kind {
                                OpKind::Load => {
                                    *out[port].entry(dst).or_insert(0) += elem_bits;
                                }
                                _ => {
                                    *out[dst].entry(port).or_insert(0) += elem_bits;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Return port.
        if f.ret.is_some() {
            let port = grow(&mut nodes, &mut out);
            for op in &f.ops {
                if op.kind == OpKind::Return && !op.operands.is_empty() {
                    let src = node_of_op[op.id.index()];
                    nodes[port].bits = op.ty.bits();
                    *out[src].entry(port).or_insert(0) += op.ty.bits() as u32;
                }
            }
        }

        // Finalize adjacency.
        let n = nodes.len();
        let mut out_v: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        let mut inc_v: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for (src, targets) in out.iter().enumerate() {
            let mut ts: Vec<(usize, u32)> = targets.iter().map(|(&t, &w)| (t, w)).collect();
            ts.sort_unstable();
            for (dst, w) in ts {
                out_v[src].push((dst, w));
                inc_v[dst].push((src, w));
            }
        }

        DepGraph {
            nodes,
            node_of_op,
            out: out_v,
            inc: inc_v,
        }
    }

    /// Node index of an op.
    pub fn node_of(&self, op: OpId) -> usize {
        self.node_of_op[op.index()]
    }

    /// Total incoming wires of a node (fan-in).
    pub fn fan_in(&self, node: usize) -> u32 {
        self.inc[node].iter().map(|&(_, w)| w).sum()
    }

    /// Total outgoing wires of a node (fan-out).
    pub fn fan_out(&self, node: usize) -> u32 {
        self.out[node].iter().map(|&(_, w)| w).sum()
    }

    /// Distinct predecessor nodes.
    pub fn preds(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.inc[node].iter().map(|&(s, _)| s)
    }

    /// Distinct successor nodes.
    pub fn succs(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.out[node].iter().map(|&(t, _)| t)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Compressed-sparse-row adjacency: the rows of a `Vec<Vec<usize>>`
/// flattened into one `indices` array with per-row `offsets`. Two
/// allocations per graph instead of one per node, and each row reads as a
/// contiguous slice — the storage behind the feature extractor's 2-hop
/// neighbor sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[i]..offsets[i + 1]` is row `i`'s slice of `indices`.
    offsets: Vec<usize>,
    /// Concatenated row contents.
    indices: Vec<usize>,
}

impl Default for Csr {
    fn default() -> Self {
        Csr::new()
    }
}

impl Csr {
    /// An empty adjacency with zero rows.
    pub fn new() -> Self {
        Csr {
            offsets: vec![0],
            indices: Vec::new(),
        }
    }

    /// An empty adjacency with room reserved for `rows` rows of `nnz`
    /// total entries.
    pub fn with_capacity(rows: usize, nnz: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Csr {
            offsets,
            indices: Vec::with_capacity(nnz),
        }
    }

    /// Append one row.
    pub fn push_row(&mut self, row: &[usize]) {
        self.indices.extend_from_slice(row);
        self.offsets.push(self.indices.len());
    }

    /// Build from explicit rows.
    pub fn from_rows(rows: &[Vec<usize>]) -> Self {
        let nnz = rows.iter().map(Vec::len).sum();
        let mut c = Csr::with_capacity(rows.len(), nnz);
        for r in rows {
            c.push_row(r);
        }
        c
    }

    /// Expand back into explicit rows (the inverse of [`Csr::from_rows`]).
    pub fn to_rows(&self) -> Vec<Vec<usize>> {
        (0..self.len()).map(|i| self.row(i).to_vec()).collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the adjacency has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[usize] {
        &self.indices[self.offsets[i]..self.offsets[i + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::frontend::compile;
    use hls_synth::{bind::bind_function, schedule::schedule_function, CharLib};
    use std::collections::HashMap as Map;

    fn graph_of(src: &str, merge: bool) -> (hls_ir::Module, DepGraph) {
        let m = compile(src).unwrap();
        let f = m.top_function();
        let sched = schedule_function(f, &CharLib::zynq7(), &Default::default(), &Map::new());
        let binding = bind_function(f, &sched);
        let g = DepGraph::build(f, Some(&binding), merge);
        (m, g)
    }

    #[test]
    fn wire_weights_follow_operand_widths() {
        let (m, g) = graph_of("int32 f(int32 x) { return x + 1; }", false);
        let f = m.top_function();
        let read = f.ops.iter().find(|o| o.kind == OpKind::Read).unwrap();
        let add = f.ops.iter().find(|o| o.kind == OpKind::Add).unwrap();
        let rn = g.node_of(read.id);
        let an = g.node_of(add.id);
        let w = g.out[rn].iter().find(|&&(t, _)| t == an).unwrap().1;
        assert_eq!(w, 32);
        assert!(g.fan_in(an) >= 32);
    }

    #[test]
    fn port_nodes_added_for_interface() {
        let (_, g) = graph_of("int32 f(int32 x, int32 a[8]) { return x + a[0]; }", false);
        let ports = g.nodes.iter().filter(|n| n.is_port).count();
        // x, a, and the return port.
        assert_eq!(ports, 3);
    }

    #[test]
    fn array_port_connects_loads() {
        let (m, g) = graph_of("int32 f(int32 a[8]) { return a[0] + a[1]; }", false);
        let f = m.top_function();
        let loads: Vec<_> = f.ops.iter().filter(|o| o.kind == OpKind::Load).collect();
        let port = (0..g.len())
            .find(|&i| g.nodes[i].is_port && g.nodes[i].bits == 32)
            .unwrap();
        for l in loads {
            let ln = g.node_of(l.id);
            assert!(g.out[port].iter().any(|&(t, _)| t == ln));
        }
    }

    #[test]
    fn shared_ops_merge_into_one_node() {
        let src = "int32 f(int32 x, int32 y) { return (x / y) / y; }";
        let (m, unmerged) = graph_of(src, false);
        let (_, merged) = graph_of(src, true);
        let f = m.top_function();
        let divs: Vec<_> = f.ops.iter().filter(|o| o.kind == OpKind::SDiv).collect();
        assert_eq!(divs.len(), 2);
        assert_ne!(unmerged.node_of(divs[0].id), unmerged.node_of(divs[1].id));
        assert_eq!(merged.node_of(divs[0].id), merged.node_of(divs[1].id));
        assert!(merged.len() < unmerged.len());
    }

    #[test]
    fn merged_node_drops_self_loops() {
        // The two dividers are data-dependent; merging must not create a
        // self edge.
        let (_, g) = graph_of("int32 f(int32 x, int32 y) { return (x / y) / y; }", true);
        for i in 0..g.len() {
            assert!(g.out[i].iter().all(|&(t, _)| t != i), "self loop at {i}");
        }
    }

    #[test]
    fn fan_in_out_consistent() {
        let (_, g) = graph_of(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i]; } return s; }",
            false,
        );
        let total_out: u64 = (0..g.len()).map(|i| g.fan_out(i) as u64).sum();
        let total_in: u64 = (0..g.len()).map(|i| g.fan_in(i) as u64).sum();
        assert_eq!(total_out, total_in);
        assert!(total_out > 0);
    }

    #[test]
    fn csr_empty_and_empty_rows() {
        assert_eq!(Csr::new().len(), 0);
        assert!(Csr::new().is_empty());
        let c = Csr::from_rows(&[vec![], vec![], vec![]]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.row(1), &[] as &[usize]);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary ragged rows — including empty rows at either end —
        /// round-trip through the flattened CSR form exactly, and every
        /// row slice matches the source row.
        #[test]
        fn csr_roundtrips_arbitrary_rows(
            rows in prop::collection::vec(
                prop::collection::vec(0usize..1000, 0..12),
                0..24,
            ),
        ) {
            let c = Csr::from_rows(&rows);
            prop_assert_eq!(c.len(), rows.len());
            prop_assert_eq!(c.nnz(), rows.iter().map(Vec::len).sum::<usize>());
            for (i, r) in rows.iter().enumerate() {
                prop_assert_eq!(c.row(i), r.as_slice());
            }
            prop_assert_eq!(c.to_rows(), rows);
        }
    }
}
