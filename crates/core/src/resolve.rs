//! The congestion-resolution advisor (paper §III-D / §IV-C).
//!
//! Inspects the most congested predictions and proposes the source-level
//! fixes the paper demonstrates: removing function inlining at merge points,
//! replicating shared input arrays, and partitioning port-starved memories.

use crate::predict::OpPrediction;
use hls_ir::directives::Partition;
use hls_ir::{Module, OpKind};
use std::collections::{HashMap, HashSet};

/// A proposed fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suggestion {
    /// Stop inlining `function`: its body dominates a congested region
    /// (the paper's case-study step 1).
    RemoveInline {
        /// The inlined function to un-inline.
        function: String,
    },
    /// Replicate array `array` in `function`: many consumers read the same
    /// partitioned buffer (case-study step 2).
    ReplicateArray {
        /// Owning function.
        function: String,
        /// The shared array.
        array: String,
        /// Number of distinct readers observed.
        readers: usize,
    },
    /// Partition array `array`: serialized memory ports throttle a hot loop.
    PartitionArray {
        /// Owning function.
        function: String,
        /// The unpartitioned array.
        array: String,
        /// Accesses contending for its ports.
        accessors: usize,
    },
}

/// Advisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ResolveOptions {
    /// Predictions above this congestion (%) are considered hot.
    pub hot_threshold: f64,
    /// Minimum distinct readers before suggesting replication.
    pub min_readers: usize,
}

impl Default for ResolveOptions {
    fn default() -> Self {
        ResolveOptions {
            hot_threshold: 90.0,
            min_readers: 6,
        }
    }
}

/// Analyze hot predictions and emit suggestions, most impactful first.
pub fn suggest_fixes(
    module: &Module,
    predictions: &[OpPrediction],
    opts: &ResolveOptions,
) -> Vec<Suggestion> {
    let mut suggestions = Vec::new();
    let hot: Vec<&OpPrediction> = predictions
        .iter()
        .filter(|p| p.predicted >= opts.hot_threshold)
        .collect();
    if hot.is_empty() {
        return suggestions;
    }

    // 1. Inlined-callee residue: lowering names inlined ops "callee.name".
    let mut inlined_hits: HashMap<String, usize> = HashMap::new();
    for p in &hot {
        let f = module.function(p.func);
        let name = &f.op(p.op).name;
        if let Some((callee, _)) = name.split_once('.') {
            if !callee.is_empty() {
                *inlined_hits.entry(callee.to_string()).or_insert(0) += 1;
            }
        }
    }
    let mut by_hits: Vec<(String, usize)> = inlined_hits.into_iter().collect();
    by_hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (function, hits) in by_hits {
        if hits >= 3 {
            suggestions.push(Suggestion::RemoveInline { function });
        }
    }

    // 2/3. Array pressure among hot memory ops.
    let mut hot_arrays: HashMap<(u32, u32), usize> = HashMap::new();
    for p in &hot {
        let f = module.function(p.func);
        let op = f.op(p.op);
        if op.kind.is_memory() {
            if let Some(a) = op.array {
                *hot_arrays.entry((p.func.0, a.0)).or_insert(0) += 1;
            }
        }
    }
    let mut keys: Vec<_> = hot_arrays.keys().copied().collect();
    keys.sort();
    for (fid, aid) in keys {
        let f = &module.functions[fid as usize];
        let arr = &f.arrays[aid as usize];
        // Distinct consumer ops of this array's loads.
        let users = f.users();
        let mut readers: HashSet<u32> = HashSet::new();
        let mut accessors = 0usize;
        for op in &f.ops {
            if op.kind.is_memory() && op.array == Some(arr.id) {
                accessors += 1;
                if op.kind == OpKind::Load {
                    for u in &users[op.id.index()] {
                        readers.insert(u.0);
                    }
                }
            }
        }
        match arr.partition {
            Partition::None if accessors > 2 => {
                suggestions.push(Suggestion::PartitionArray {
                    function: f.name.clone(),
                    array: arr.name.clone(),
                    accessors,
                });
            }
            Partition::Complete if readers.len() >= opts.min_readers => {
                suggestions.push(Suggestion::ReplicateArray {
                    function: f.name.clone(),
                    array: arr.name.clone(),
                    readers: readers.len(),
                });
            }
            _ => {}
        }
    }

    suggestions
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::directives::Directives;
    use hls_ir::frontend::compile_with_directives;
    use hls_ir::FuncId;

    fn hot_everything(m: &Module) -> Vec<OpPrediction> {
        let mut preds = Vec::new();
        for f in &m.functions {
            for op in &f.ops {
                preds.push(OpPrediction {
                    func: f.id,
                    op: op.id,
                    line: 1,
                    predicted: 150.0,
                });
            }
        }
        preds
    }

    #[test]
    fn inlined_residue_suggests_un_inlining() {
        let src = "int32 g(int32 x) { int32 t = x * 3; int32 u = t + 1; int32 v = u * 2; return v; }\nint32 f(int32 x) { return g(x) + g(x + 1); }";
        let mut d = Directives::new();
        d.set_inline("g", true);
        let m = compile_with_directives(src, "t", &d).unwrap();
        let sugg = suggest_fixes(&m, &hot_everything(&m), &ResolveOptions::default());
        assert!(
            sugg.iter()
                .any(|s| matches!(s, Suggestion::RemoveInline { function } if function == "g")),
            "{sugg:?}"
        );
    }

    #[test]
    fn unpartitioned_hot_array_suggests_partition() {
        let src = "int32 f(int32 a[32]) { return a[0] + a[1] + a[2] + a[3]; }";
        let m = compile_with_directives(src, "t", &Directives::new()).unwrap();
        let sugg = suggest_fixes(&m, &hot_everything(&m), &ResolveOptions::default());
        assert!(
            sugg.iter()
                .any(|s| matches!(s, Suggestion::PartitionArray { array, .. } if array == "a")),
            "{sugg:?}"
        );
    }

    #[test]
    fn shared_partitioned_array_suggests_replication() {
        let src = "int32 f(int32 a[8]) { int32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 8; i++) { s = s + a[i] * a[7 - i]; } return s; }";
        let mut d = Directives::new();
        d.set_partition("f/a", hls_ir::directives::Partition::Complete);
        let m = compile_with_directives(src, "t", &d).unwrap();
        let sugg = suggest_fixes(&m, &hot_everything(&m), &ResolveOptions::default());
        assert!(
            sugg.iter()
                .any(|s| matches!(s, Suggestion::ReplicateArray { array, .. } if array == "a")),
            "{sugg:?}"
        );
    }

    #[test]
    fn cold_designs_get_no_suggestions() {
        let src = "int32 f(int32 x) { return x + 1; }";
        let m = compile_with_directives(src, "t", &Directives::new()).unwrap();
        let preds = vec![OpPrediction {
            func: FuncId(0),
            op: hls_ir::OpId(0),
            line: 1,
            predicted: 10.0,
        }];
        assert!(suggest_fixes(&m, &preds, &ResolveOptions::default()).is_empty());
    }
}
