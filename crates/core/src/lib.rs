//! # congestion-core
//!
//! The paper's contribution: **machine-learning based routing congestion
//! prediction for FPGA high-level synthesis** (*Zhao et al., DATE 2019*).
//!
//! The crate glues the substrates together into the paper's two phases:
//!
//! * **Training** — run designs through HLS ([`hls_synth`]) and simulated
//!   place-and-route ([`fpga_fabric`]), [`backtrace`] per-CLB congestion
//!   metrics to IR operations, extract the **302 features in 7 categories**
//!   ([`features`]), [`filter`] marginal unroll replicas, and train
//!   Lasso/ANN/GBRT regressors ([`predict`]).
//! * **Prediction** — for a new design, stop after HLS, predict per-operation
//!   congestion, [`locate`] the hottest source lines, and propose fixes
//!   ([`resolve`]).
//!
//! ```
//! use congestion_core::pipeline::CongestionFlow;
//! use rosetta_gen::{face_detection, Preset, suite};
//!
//! let flow = CongestionFlow::fast(); // reduced effort for doc tests
//! let bench = suite::digit_spam_group(Preset::Plain);
//! let module = bench.build()?;
//! let (design, implres) = flow.implement(&module)?;
//! assert!(implres.congestion.max_any() >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod backtrace;
pub mod dataset;
pub mod features;
pub mod filter;
pub mod fingerprint;
pub mod graph;
pub mod locate;
pub mod persist;
pub mod pipeline;
pub mod predict;
pub mod resolve;
pub mod stats;

pub use backtrace::BacktraceError;
pub use dataset::{CongestionDataset, Sample, Target};
pub use features::{FeatureCategory, FEATURE_COUNT};
pub use fingerprint::{drift, DatasetFingerprint, DriftReport, FINGERPRINT_SCHEMA};
pub use graph::DepGraph;
pub use persist::{
    CheckpointEntry, CheckpointLookup, CheckpointStore, PersistError, RecordedFailure,
};
pub use pipeline::{
    CheckpointConfig, CongestionFlow, DatasetBuildReport, DesignFailure, DesignReport, StageTimings,
};
pub use predict::{extract_feature_rows, source_digest, CongestionPredictor, ModelKind};
