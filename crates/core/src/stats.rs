//! Dataset statistics: the summary the paper's Table III derives its
//! congestion rows from, computed per design and overall.

use crate::dataset::{CongestionDataset, Target};
use std::collections::BTreeMap;
use std::fmt;

/// Label statistics of one group of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum label.
    pub min: f64,
    /// Maximum label.
    pub max: f64,
    /// Mean label.
    pub mean: f64,
    /// Fraction of samples that are unroll replicas.
    pub replica_fraction: f64,
}

impl LabelStats {
    fn of(labels: &[f64], replicas: usize) -> LabelStats {
        let count = labels.len();
        let (mut min, mut max, mut sum) = (f64::MAX, f64::MIN, 0.0);
        for &v in labels {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        if count == 0 {
            return LabelStats {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                replica_fraction: 0.0,
            };
        }
        LabelStats {
            count,
            min,
            max,
            mean: sum / count as f64,
            replica_fraction: replicas as f64 / count as f64,
        }
    }
}

/// Per-design and overall statistics of a dataset for one target metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Target the labels were taken from.
    pub target: Target,
    /// Statistics keyed by design name (sorted).
    pub per_design: BTreeMap<String, LabelStats>,
    /// Statistics over the whole dataset.
    pub overall: LabelStats,
}

/// Compute statistics of `data` under `target`.
pub fn dataset_stats(data: &CongestionDataset, target: Target) -> DatasetStats {
    let mut groups: BTreeMap<String, (Vec<f64>, usize)> = BTreeMap::new();
    let mut all = Vec::with_capacity(data.len());
    let mut all_replicas = 0usize;
    for s in &data.samples {
        let v = target.of(s);
        let e = groups.entry(s.design.clone()).or_default();
        e.0.push(v);
        if s.replica.is_some() {
            e.1 += 1;
            all_replicas += 1;
        }
        all.push(v);
    }
    DatasetStats {
        target,
        per_design: groups
            .into_iter()
            .map(|(k, (labels, reps))| (k, LabelStats::of(&labels, reps)))
            .collect(),
        overall: LabelStats::of(&all, all_replicas),
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<32} {:>7} {:>8} {:>8} {:>8} {:>9}",
            format!("design ({})", self.target.name()),
            "samples",
            "min%",
            "max%",
            "mean%",
            "replicas"
        )?;
        for (name, s) in &self.per_design {
            writeln!(
                f,
                "{:<32} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.1}%",
                name,
                s.count,
                s.min,
                s.max,
                s.mean,
                s.replica_fraction * 100.0
            )?;
        }
        writeln!(
            f,
            "{:<32} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.1}%",
            "TOTAL",
            self.overall.count,
            self.overall.min,
            self.overall.max,
            self.overall.mean,
            self.overall.replica_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::features::FEATURE_COUNT;
    use hls_ir::{FuncId, OpId, ReplicaTag};

    fn push(ds: &mut CongestionDataset, s: Sample) {
        ds.push(s, &vec![0.0; FEATURE_COUNT]);
    }

    fn sample(design: &str, v: f64, replica: bool) -> Sample {
        Sample {
            design: design.into(),
            func: FuncId(0),
            op: OpId(0),
            line: 1,
            replica: replica.then_some(ReplicaTag {
                group: 1,
                index: 0,
                total: 2,
            }),
            vertical: v,
            horizontal: v / 2.0,
        }
    }

    #[test]
    fn stats_split_by_design() {
        let mut ds = CongestionDataset::new();
        push(&mut ds, sample("a", 10.0, false));
        push(&mut ds, sample("a", 30.0, true));
        push(&mut ds, sample("b", 100.0, false));
        let s = dataset_stats(&ds, Target::Vertical);
        assert_eq!(s.per_design.len(), 2);
        let a = &s.per_design["a"];
        assert_eq!(a.count, 2);
        assert_eq!(a.min, 10.0);
        assert_eq!(a.max, 30.0);
        assert_eq!(a.mean, 20.0);
        assert_eq!(a.replica_fraction, 0.5);
        assert_eq!(s.overall.count, 3);
        assert_eq!(s.overall.max, 100.0);
    }

    #[test]
    fn horizontal_target_halves_labels() {
        let mut ds = CongestionDataset::new();
        push(&mut ds, sample("a", 40.0, false));
        let v = dataset_stats(&ds, Target::Vertical).overall.mean;
        let h = dataset_stats(&ds, Target::Horizontal).overall.mean;
        assert_eq!(h, v / 2.0);
    }

    #[test]
    fn empty_dataset_is_harmless() {
        let s = dataset_stats(&CongestionDataset::new(), Target::Average);
        assert_eq!(s.overall.count, 0);
        assert!(s.to_string().contains("TOTAL"));
    }

    #[test]
    fn display_lists_each_design() {
        let mut ds = CongestionDataset::new();
        push(&mut ds, sample("alpha", 1.0, false));
        push(&mut ds, sample("beta", 2.0, false));
        let text = dataset_stats(&ds, Target::Vertical).to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
    }
}
