//! Back-tracing (paper §III-A1): from per-CLB congestion metrics through
//! placed RTL cells back to IR operations.
//!
//! The RTL netlist records each cell's IR provenance, and placement records
//! each cell's tile footprint; the label of an operation is the mean
//! vertical/horizontal congestion over the CLBs its cells occupy (an
//! operation replicated by unrolling or multi-instance calls averages over
//! all its hardware, matching the paper's per-CLB-to-op linkage).

use fpga_fabric::ImplResult;
use hls_ir::{FuncId, OpId};
use hls_synth::SynthesizedDesign;
use std::collections::HashMap;

/// The congestion label of one IR operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpLabel {
    /// Mean vertical congestion (%) over the op's CLBs.
    pub vertical: f64,
    /// Mean horizontal congestion (%).
    pub horizontal: f64,
    /// Number of cells carrying the op.
    pub cells: usize,
}

impl OpLabel {
    /// The paper's "Avg (V, H)" metric.
    pub fn average(&self) -> f64 {
        (self.vertical + self.horizontal) / 2.0
    }
}

/// Back-trace congestion labels for every IR op that materialized into
/// hardware. Ops that vanished in RTL (constants, casts) get no label.
pub fn backtrace_labels(
    design: &SynthesizedDesign,
    impl_result: &ImplResult,
) -> HashMap<(FuncId, OpId), OpLabel> {
    let op_cells = design.rtl.op_cells();
    let mut labels = HashMap::with_capacity(op_cells.len());
    for (key, cells) in op_cells {
        let mut v = 0.0;
        let mut h = 0.0;
        let mut n = 0usize;
        for &cell in &cells {
            let (cv, ch) = impl_result.cell_congestion(cell);
            v += cv;
            h += ch;
            n += 1;
        }
        if n == 0 {
            continue;
        }
        labels.insert(
            key,
            OpLabel {
                vertical: v / n as f64,
                horizontal: h / n as f64,
                cells: n,
            },
        );
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::{par::run_par, par::ParOptions, Device};
    use hls_ir::frontend::compile;
    use hls_ir::OpKind;
    use hls_synth::{HlsFlow, HlsOptions};

    fn labels_for(src: &str) -> (SynthesizedDesign, HashMap<(FuncId, OpId), OpLabel>) {
        let m = compile(src).unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let r = run_par(&d, &Device::xc7z020(), &ParOptions::fast());
        let l = backtrace_labels(&d, &r);
        (d, l)
    }

    #[test]
    fn hardware_ops_get_labels() {
        let (d, labels) = labels_for(
            "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        );
        let f = d.module.top_function();
        let mul = f.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
        let key = (f.id, mul.id);
        let label = labels.get(&key).expect("multiplier must be labeled");
        assert!(label.vertical >= 0.0 && label.horizontal >= 0.0);
        assert!(label.cells >= 1);
        assert!(label.average() >= 0.0);
    }

    #[test]
    fn pure_wiring_ops_get_no_label() {
        let (d, labels) = labels_for("int32 f(int32 x) { return x + 1; }");
        let f = d.module.top_function();
        let c = f.ops.iter().find(|o| o.kind == OpKind::Const).unwrap();
        assert!(!labels.contains_key(&(f.id, c.id)), "consts have no cells");
    }

    #[test]
    fn callee_ops_labeled_once_across_instances() {
        let (d, labels) = labels_for(
            "int32 g(int32 x) { return x * x; }\nint32 f(int32 x) { return g(x) + g(x + 1); }",
        );
        let g = d.module.function_by_name("g").unwrap();
        let mul = g.ops.iter().find(|o| o.kind == OpKind::Mul).unwrap();
        let label = labels.get(&(g.id, mul.id)).expect("mul labeled");
        assert_eq!(label.cells, 2, "two instances average into one label");
    }
}
