//! Back-tracing (paper §III-A1): from per-CLB congestion metrics through
//! placed RTL cells back to IR operations.
//!
//! The RTL netlist records each cell's IR provenance, and placement records
//! each cell's tile footprint; the label of an operation is the mean
//! vertical/horizontal congestion over the CLBs its cells occupy (an
//! operation replicated by unrolling or multi-instance calls averages over
//! all its hardware, matching the paper's per-CLB-to-op linkage).
//!
//! Back-tracing is fallible with a typed error ([`BacktraceError`]) rather
//! than a panic: a provenance/placement mismatch is a per-design data bug
//! that the supervised dataset builder downgrades into that design's
//! failure-taxonomy entry, not a reason to kill a batch.

use fpga_fabric::ImplResult;
use hls_ir::{FuncId, OpId};
use hls_synth::SynthesizedDesign;
use std::collections::HashMap;
use std::fmt;

/// The congestion label of one IR operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpLabel {
    /// Mean vertical congestion (%) over the op's CLBs.
    pub vertical: f64,
    /// Mean horizontal congestion (%).
    pub horizontal: f64,
    /// Number of cells carrying the op.
    pub cells: usize,
}

impl OpLabel {
    /// The paper's "Avg (V, H)" metric.
    pub fn average(&self) -> f64 {
        (self.vertical + self.horizontal) / 2.0
    }
}

/// Typed back-trace failures, feeding the dataset builder's per-design
/// failure taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BacktraceError {
    /// The netlist's op→cell provenance references a cell the placement
    /// never saw — the RTL and placement came from different designs, or a
    /// transform corrupted provenance.
    CellUnplaced {
        /// Offending cell index.
        cell: usize,
        /// Number of cells the placement knows about.
        placed: usize,
    },
    /// A transient fault injected by an armed faultkit plan at the
    /// `backtrace` or `features` injection point (chaos testing only).
    Injected(String),
}

impl BacktraceError {
    /// Whether a supervisor should retry the stage.
    pub fn is_transient(&self) -> bool {
        matches!(self, BacktraceError::Injected(_))
    }
}

impl fmt::Display for BacktraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BacktraceError::CellUnplaced { cell, placed } => write!(
                f,
                "backtrace: netlist references cell {cell} but the placement has only {placed} cells"
            ),
            BacktraceError::Injected(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BacktraceError {}

/// Back-trace congestion labels for every IR op that materialized into
/// hardware. Ops that vanished in RTL (constants, casts) get no label.
///
/// # Errors
/// Returns [`BacktraceError::CellUnplaced`] when op→cell provenance points
/// outside the placement, and [`BacktraceError::Injected`] under an armed
/// chaos plan.
pub fn backtrace_labels(
    design: &SynthesizedDesign,
    impl_result: &ImplResult,
) -> Result<HashMap<(FuncId, OpId), OpLabel>, BacktraceError> {
    faultkit::inject("backtrace").map_err(|f| BacktraceError::Injected(f.to_string()))?;
    let placed = impl_result.placement.pos.len();
    let op_cells = design.rtl.op_cells();
    let mut labels = HashMap::with_capacity(op_cells.len());
    for (key, cells) in op_cells {
        let mut v = 0.0;
        let mut h = 0.0;
        let mut n = 0usize;
        for &cell in &cells {
            if cell.index() >= placed {
                return Err(BacktraceError::CellUnplaced {
                    cell: cell.index(),
                    placed,
                });
            }
            let (cv, ch) = impl_result.cell_congestion(cell);
            v += cv;
            h += ch;
            n += 1;
        }
        if n == 0 {
            continue;
        }
        labels.insert(
            key,
            OpLabel {
                vertical: v / n as f64,
                horizontal: h / n as f64,
                cells: n,
            },
        );
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::{par::run_par, par::ParOptions, Device};
    use hls_ir::frontend::compile;
    use hls_ir::OpKind;
    use hls_synth::{HlsFlow, HlsOptions};
    use std::error::Error;

    type LabelMap = HashMap<(FuncId, OpId), OpLabel>;

    fn labels_for(src: &str) -> Result<(SynthesizedDesign, LabelMap), Box<dyn Error>> {
        let m = compile(src)?;
        let d = HlsFlow::new(HlsOptions::default()).run(&m)?;
        let r = run_par(&d, &Device::xc7z020(), &ParOptions::fast());
        let l = backtrace_labels(&d, &r)?;
        Ok((d, l))
    }

    #[test]
    fn hardware_ops_get_labels() -> Result<(), Box<dyn Error>> {
        let (d, labels) = labels_for(
            "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        )?;
        let f = d.module.top_function();
        let mul = f
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Mul)
            .ok_or("no multiplier in IR")?;
        let key = (f.id, mul.id);
        let label = labels.get(&key).ok_or("multiplier must be labeled")?;
        assert!(label.vertical >= 0.0 && label.horizontal >= 0.0);
        assert!(label.cells >= 1);
        assert!(label.average() >= 0.0);
        Ok(())
    }

    #[test]
    fn pure_wiring_ops_get_no_label() -> Result<(), Box<dyn Error>> {
        let (d, labels) = labels_for("int32 f(int32 x) { return x + 1; }")?;
        let f = d.module.top_function();
        let c = f
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Const)
            .ok_or("no const in IR")?;
        assert!(!labels.contains_key(&(f.id, c.id)), "consts have no cells");
        Ok(())
    }

    #[test]
    fn callee_ops_labeled_once_across_instances() -> Result<(), Box<dyn Error>> {
        let (d, labels) = labels_for(
            "int32 g(int32 x) { return x * x; }\nint32 f(int32 x) { return g(x) + g(x + 1); }",
        )?;
        let g = d.module.function_by_name("g").ok_or("no function g")?;
        let mul = g
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Mul)
            .ok_or("no multiplier in g")?;
        let label = labels.get(&(g.id, mul.id)).ok_or("mul labeled")?;
        assert_eq!(label.cells, 2, "two instances average into one label");
        Ok(())
    }

    #[test]
    fn provenance_outside_placement_is_a_typed_error() -> Result<(), Box<dyn Error>> {
        let m = compile("int32 f(int32 x, int32 y) { return x * y + 1; }")?;
        let d = HlsFlow::new(HlsOptions::default()).run(&m)?;
        let mut r = run_par(&d, &Device::xc7z020(), &ParOptions::fast());
        // Corrupt the placement: drop every cell, as if it came from a
        // different (empty) design.
        r.placement.pos.clear();
        r.placement.span.clear();
        let e = backtrace_labels(&d, &r).unwrap_err();
        assert!(matches!(e, BacktraceError::CellUnplaced { placed: 0, .. }));
        assert!(!e.is_transient());
        assert!(e.to_string().contains("placement"));
        Ok(())
    }
}
