//! The end-to-end congestion-prediction pipeline (paper Fig 2).

use crate::dataset::CongestionDataset;
use fpga_fabric::par::{run_par, ParOptions};
use fpga_fabric::{Device, ImplResult};
use hls_ir::Module;
use hls_synth::{HlsFlow, HlsOptions, SynthError, SynthesizedDesign};

/// Drives HLS + (for the training phase) simulated PAR over designs.
#[derive(Debug, Clone)]
pub struct CongestionFlow {
    /// HLS options.
    pub hls: HlsOptions,
    /// PAR options.
    pub par: ParOptions,
    /// Target device.
    pub device: Device,
}

impl CongestionFlow {
    /// Default flow: 10 ns clock on the paper's XC7Z020-like device.
    pub fn new() -> Self {
        CongestionFlow {
            hls: HlsOptions::default(),
            par: ParOptions::default(),
            device: Device::xc7z020(),
        }
    }

    /// Reduced-effort flow for tests and doc examples.
    pub fn fast() -> Self {
        CongestionFlow {
            par: ParOptions::fast(),
            ..Self::new()
        }
    }

    /// HLS only — the prediction phase's input.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification.
    pub fn synthesize(&self, module: &Module) -> Result<SynthesizedDesign, SynthError> {
        HlsFlow::new(self.hls.clone()).run(module)
    }

    /// Full C-to-FPGA: HLS plus simulated place-and-route — the training
    /// phase's label source.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification.
    pub fn implement(&self, module: &Module) -> Result<(SynthesizedDesign, ImplResult), SynthError> {
        let design = self.synthesize(module)?;
        let impl_result = run_par(&design, &self.device, &self.par);
        Ok((design, impl_result))
    }

    /// Build a labelled dataset from several designs (the paper combines
    /// three suite groups into 8111 samples).
    ///
    /// # Errors
    /// Returns the first synthesis error encountered.
    pub fn build_dataset(&self, modules: &[Module]) -> Result<CongestionDataset, SynthError> {
        let mut ds = CongestionDataset::new();
        for m in modules {
            let (design, impl_result) = self.implement(m)?;
            ds.add_design(&design, &impl_result, &self.device);
        }
        Ok(ds)
    }
}

impl Default for CongestionFlow {
    fn default() -> Self {
        CongestionFlow::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::filter::{filter_marginal, FilterOptions};
    use crate::predict::{CongestionPredictor, ModelKind, TrainOptions};
    use hls_ir::frontend::compile_named;

    #[test]
    fn end_to_end_small_training_run() {
        let flow = CongestionFlow::fast();
        let sources = [
            "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
            "int32 f(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
            "int32 f(int32 x, int32 y) { return (x * y) + (x - y) * 3; }",
        ];
        let modules: Vec<Module> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| compile_named(s, &format!("d{i}")).unwrap())
            .collect();
        let ds = flow.build_dataset(&modules).unwrap();
        assert!(ds.len() > 20, "dataset too small: {}", ds.len());

        let filtered = filter_marginal(&ds, &FilterOptions::default());
        assert!(filtered.kept.len() <= ds.len());

        let (train, test) = filtered.kept.split(0.2, 9);
        let p = CongestionPredictor::train(
            ModelKind::Gbrt,
            Target::Vertical,
            &train,
            &TrainOptions::fast(),
        );
        let acc = p.evaluate(&test);
        assert!(acc.mae.is_finite() && acc.mae >= 0.0);
    }

    #[test]
    fn prediction_phase_needs_no_par() {
        let flow = CongestionFlow::fast();
        let m = compile_named(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i]; } return s; }",
            "predict_me",
        )
        .unwrap();
        let ds = flow.build_dataset(std::slice::from_ref(&m)).unwrap();
        let p = CongestionPredictor::train(
            ModelKind::Linear,
            Target::Average,
            &ds,
            &TrainOptions::fast(),
        );
        // New design: HLS only, then predict.
        let design = flow.synthesize(&m).unwrap();
        let preds = p.predict_design(&design, &flow.device);
        assert!(!preds.is_empty());
        assert!(preds.iter().all(|q| q.predicted.is_finite()));
    }
}
