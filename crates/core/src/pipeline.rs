//! The end-to-end congestion-prediction pipeline (paper Fig 2).
//!
//! Dataset construction is the most expensive step of the training phase —
//! every design goes through HLS and a full simulated place-and-route — so
//! [`CongestionFlow::build_dataset_report`] fans designs out across worker
//! threads and merges the per-design samples back **in input order**,
//! making the parallel output bit-identical to the serial path. Two
//! executors share the same three stage bodies: the default
//! design-parallel executor runs one design end to end per worker
//! ([`parkit::par_map_threads`]), and the cross-stage pipelined executor
//! ([`CongestionFlow::with_pipeline_depth`]) gives each stage its own
//! worker pool with bounded queues in between, overlapping HLS of design
//! N+1 with place/route of design N and feature extraction of design N-1
//! ([`parkit::pipeline_map`]).
//!
//! It is also *supervised*: each design's stages (`hls`, `par`, `features`)
//! run under a [`faultkit::Supervisor`] that catches panics at the stage
//! boundary, retries transient failures with deterministic backoff, and
//! downgrades terminal failures into the per-design [`DesignFailure`]
//! taxonomy — a bad design costs its own samples, never the batch. With a
//! checkpoint directory configured, every design's verdict (success *or*
//! failure) persists incrementally, so a killed run resumed with the same
//! configuration recomputes nothing.

use crate::backtrace::BacktraceError;
use crate::dataset::CongestionDataset;
use crate::features::ExtractKernel;
use crate::persist::{
    CheckpointEntry, CheckpointLookup, CheckpointStore, PersistError, RecordedFailure,
};
use faultkit::{FaultPlan, StageFailure, StageLog, Supervisor, SupervisorPolicy};
use fpga_fabric::par::{run_par, run_par_obs, ParOptions};
use fpga_fabric::place::PlaceStats;
use fpga_fabric::route::RouteStats;
use fpga_fabric::{Device, ImplResult};
use hls_ir::Module;
use hls_synth::{HlsFlow, HlsOptions, SynthError, SynthesizedDesign};
use obskit::{Collector, ObsRecord, OwnedSpan};
use parkit::StagePools;
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where (and whether) a dataset build checkpoints per-design outcomes.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding one entry (CSV + JSON meta) per design.
    pub dir: PathBuf,
    /// Replay committed entries instead of recomputing their designs.
    /// When `false` the run still *writes* checkpoints but starts fresh.
    pub resume: bool,
}

/// Cross-stage pipelined execution for dataset builds: instead of one
/// worker owning a design end to end, per-stage worker pools overlap HLS
/// of design N+1 with place/route of design N and feature extraction of
/// design N-1 (see [`parkit::pipeline_map`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Capacity of the bounded queues linking adjacent stages: how many
    /// designs may sit between two stages before the upstream stage
    /// blocks (backpressure). Clamped to at least 1.
    pub depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { depth: 2 }
    }
}

/// Drives HLS + (for the training phase) simulated PAR over designs.
#[derive(Debug, Clone)]
pub struct CongestionFlow {
    /// HLS options.
    pub hls: HlsOptions,
    /// PAR options.
    pub par: ParOptions,
    /// Target device.
    pub device: Device,
    /// Worker threads for dataset construction. `None` (the default) uses
    /// [`parkit::num_threads`], which honours `RAYON_NUM_THREADS`.
    pub workers: Option<usize>,
    /// Cross-stage pipelining for dataset construction. `None` (the
    /// default) runs each design end to end on one worker; `Some` splits
    /// the workers into per-stage pools with bounded queues in between.
    pub pipeline: Option<PipelineConfig>,
    /// Feature-extraction kernel. Both kernels are bitwise identical;
    /// `Reference` keeps the original per-node allocation path alive for
    /// differential tests and benchmarks.
    pub extract: ExtractKernel,
    /// Per-stage retry/budget policy for dataset construction.
    pub supervision: SupervisorPolicy,
    /// Fault plan armed during dataset construction (chaos testing).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Per-design checkpointing for dataset construction.
    pub checkpoint: Option<CheckpointConfig>,
}

impl CongestionFlow {
    /// Default flow: 10 ns clock on the paper's XC7Z020-like device.
    pub fn new() -> Self {
        CongestionFlow {
            hls: HlsOptions::default(),
            par: ParOptions::default(),
            device: Device::xc7z020(),
            workers: None,
            pipeline: None,
            extract: ExtractKernel::default(),
            supervision: SupervisorPolicy::default(),
            fault_plan: None,
            checkpoint: None,
        }
    }

    /// Reduced-effort flow for tests and doc examples.
    pub fn fast() -> Self {
        CongestionFlow {
            par: ParOptions::fast(),
            ..Self::new()
        }
    }

    /// Set an explicit worker count for dataset construction.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Enable the cross-stage pipelined executor with the given inter-stage
    /// queue depth (clamped to at least 1).
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline = Some(PipelineConfig {
            depth: depth.max(1),
        });
        self
    }

    /// Select the feature-extraction kernel.
    pub fn with_extract_kernel(mut self, kernel: ExtractKernel) -> Self {
        self.extract = kernel;
        self
    }

    /// Set the per-stage retry/budget policy.
    pub fn with_supervision(mut self, policy: SupervisorPolicy) -> Self {
        self.supervision = policy;
        self
    }

    /// Arm a fault plan for chaos testing. Also silences the default panic
    /// hook's backtrace spew for injected panics — they are expected and
    /// caught.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        faultkit::silence_injected_panics();
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Checkpoint per-design outcomes under `dir`; with `resume`, replay
    /// entries committed by a previous run of the same configuration.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, resume: bool) -> Self {
        self.checkpoint = Some(CheckpointConfig {
            dir: dir.into(),
            resume,
        });
        self
    }

    /// Digest of everything that determines a design's samples: HLS and
    /// PAR options, and the target device. Checkpoints are keyed by this,
    /// so entries from a differently-configured run are never resumed.
    /// Worker count, pipeline config, extract kernel, fault plan, and
    /// supervision policy are deliberately excluded — they change *how*
    /// the answer is computed, not the answer (the extract kernels are
    /// bitwise identical by contract, enforced by the differential tests).
    pub fn config_digest(&self) -> u64 {
        let opts = format!("{:?}|{:?}|{}", self.hls, self.par, self.device.name);
        faultkit::fnv1a(&[b"congestion-flow-v1", opts.as_bytes()])
    }

    /// HLS only — the prediction phase's input.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification.
    pub fn synthesize(&self, module: &Module) -> Result<SynthesizedDesign, SynthError> {
        HlsFlow::new(self.hls.clone()).run(module)
    }

    /// Full C-to-FPGA: HLS plus simulated place-and-route — the training
    /// phase's label source.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification.
    pub fn implement(
        &self,
        module: &Module,
    ) -> Result<(SynthesizedDesign, ImplResult), SynthError> {
        let design = self.synthesize(module)?;
        let impl_result = run_par(&design, &self.device, &self.par);
        Ok((design, impl_result))
    }

    /// [`Self::implement`] recording into an [`obskit::Collector`]: a
    /// `design` root span with `hls`/`place`/`route`/`congestion`/`timing`
    /// child spans plus the router's registry metrics. Used by the CLI's
    /// `implement --trace-out`.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification; the
    /// partial `hls` span (annotated with the error) is still recorded.
    pub fn implement_observed(
        &self,
        module: &Module,
        obs: &Collector,
    ) -> Result<(SynthesizedDesign, ImplResult), SynthError> {
        let mut design_span = obs.span("design");
        design_span.arg("design", module.name.clone());
        let mut hls_span = obs.span("hls");
        let design = match self.synthesize(module) {
            Ok(d) => d,
            Err(e) => {
                hls_span.arg("error", e.to_string());
                drop(hls_span);
                design_span.arg("outcome", "failed");
                return Err(e);
            }
        };
        hls_span.end();
        let (impl_result, _timings) = run_par_obs(&design, &self.device, &self.par, obs);
        Ok((design, impl_result))
    }

    /// Build a labelled dataset from several designs (the paper combines
    /// three suite groups into 8111 samples).
    ///
    /// Compatibility wrapper over [`Self::build_dataset_report`]: same
    /// samples in the same order, but fail-fast in the result type.
    ///
    /// # Errors
    /// Returns the first (in input order) design's failure.
    pub fn build_dataset(&self, modules: &[Module]) -> Result<CongestionDataset, DesignFailure> {
        self.build_dataset_report(modules).into_result()
    }

    /// Build a labelled dataset, implementing designs on parallel workers
    /// and reporting per-design outcomes and per-stage timings.
    ///
    /// Properties:
    ///
    /// - **Deterministic**: samples are merged in design input order, and
    ///   each design's HLS/PAR run is seeded, so the dataset — and every
    ///   supervision log, injection decision, and retry schedule — is
    ///   bit-identical regardless of worker count.
    /// - **Fault-tolerant**: a failing design is recorded in
    ///   [`DatasetBuildReport::designs`] (with its [`DesignFailure`]
    ///   taxonomy entry) and does not abort the build; panics are caught at
    ///   stage boundaries and degrade the same way.
    /// - **Resumable**: with [`Self::with_checkpoint`], each design's
    ///   verdict persists as soon as it is known; a resumed run replays
    ///   committed verdicts instead of recomputing them.
    pub fn build_dataset_report(&self, modules: &[Module]) -> DatasetBuildReport {
        let start = Instant::now();
        let requested = self.workers.unwrap_or_else(parkit::num_threads);
        let store = self.open_checkpoint_store();
        let st: Option<&CheckpointStore> = match store.as_deref() {
            Some(Ok(s)) => Some(s),
            _ => None,
        };
        // Two executors, one set of stage bodies: the design-parallel path
        // runs the three stages back to back on one worker per design; the
        // pipelined path gives each stage its own pool so designs overlap
        // across stages. parkit guarantees both merge in input order, so
        // the choice never changes the output.
        let results = match self.pipeline {
            None => {
                parkit::par_map_threads(requested, modules, |m| self.implement_for_dataset(m, st))
            }
            Some(cfg) => parkit::pipeline_map(
                Self::stage_pools(requested),
                cfg.depth,
                modules,
                |m| self.stage_hls(m, st),
                |m, flight| self.stage_par(m, flight, st),
                |m, flight| self.stage_features(m, flight, st),
            ),
        };

        // Merge in input order — bit-identical to the serial loop. The
        // per-design obskit records merge under the same rule, so every
        // deterministic metric (counters, histogram buckets) is identical
        // for any worker count; only wall-clocks vary.
        let root = Collector::new();
        let mut dataset = CongestionDataset::new();
        let mut designs = Vec::with_capacity(results.len());
        {
            let mut build_span = root.span("dataset_build");
            build_span.arg("designs", modules.len().to_string());
            build_span.arg(
                "executor",
                if self.pipeline.is_some() {
                    "pipelined"
                } else {
                    "design-parallel"
                },
            );
            for (ds, report, rec) in results {
                dataset.extend(&ds);
                designs.push(report);
                root.absorb(rec);
            }
        }
        if let Some(Err(e)) = store.as_deref() {
            // The directory could not even be opened: record it once and
            // run without checkpointing rather than aborting the build.
            root.inc("checkpoint.errors", 1);
            for d in &mut designs {
                d.checkpoint_error.get_or_insert_with(|| e.to_string());
            }
        }
        let wall = start.elapsed();
        root.set_gauge("dataset.wall_ms", wall.as_secs_f64() * 1e3);
        DatasetBuildReport {
            dataset,
            designs,
            workers: requested.clamp(1, modules.len().max(1)),
            wall,
            obs: root.finish(),
        }
    }

    /// Open the configured checkpoint store, if any. The `Err` form is
    /// surfaced in the build report instead of failing the build.
    fn open_checkpoint_store(&self) -> Option<Arc<Result<CheckpointStore, PersistError>>> {
        self.checkpoint
            .as_ref()
            .map(|c| Arc::new(CheckpointStore::open(&c.dir, self.config_digest())))
    }

    /// Split `workers` across the three stage pools of the pipelined
    /// executor, weighted by measured stage cost (place-and-route
    /// dominates, features second, HLS a sliver). Every stage keeps at
    /// least one worker so the pipeline can always drain.
    fn stage_pools(workers: usize) -> StagePools {
        let par = (workers / 2).max(1);
        let features = (workers / 4).max(1);
        let hls = workers.saturating_sub(par + features).max(1);
        [hls, par, features]
    }

    /// The per-design unit of [`Self::build_dataset_report`]'s
    /// design-parallel executor: the three supervised stages back to back
    /// on the calling worker. The stage bodies are shared verbatim with
    /// the pipelined executor, so the two executors are bit-identical by
    /// construction. Never panics on a bad module — or a panicking stage.
    ///
    /// Every stage runs inside an obskit span on the design's own
    /// collector, and [`StageTimings`] is derived from those spans — one
    /// measurement substrate instead of two. A design that fails mid-flow
    /// keeps the spans of every stage it reached, so partial timings
    /// survive into the report (the `hls` span of a design that dies in
    /// synthesis still carries the time spent before the error, including
    /// retried attempts).
    fn implement_for_dataset(
        &self,
        module: &Module,
        store: Option<&CheckpointStore>,
    ) -> DesignResult {
        let flight = self.stage_hls(module, store);
        let flight = self.stage_par(module, flight, store);
        self.stage_features(module, flight, store)
    }

    /// Stage 1: checkpoint replay, then supervised HLS. `InvalidIr` is
    /// permanent; injected faults retry.
    fn stage_hls(&self, module: &Module, store: Option<&CheckpointStore>) -> Flight {
        let obs = Collector::new();
        obs.inc("dataset.designs", 1);

        // Resume fast path: a committed verdict under this configuration
        // short-circuits the whole design.
        if let Some(store) = store {
            if self.checkpoint.as_ref().is_some_and(|c| c.resume) {
                match store.lookup(&module.name) {
                    CheckpointLookup::Hit(entry) => {
                        return Flight::Done(Box::new(self.replay_checkpoint(module, entry, obs)));
                    }
                    CheckpointLookup::Miss => {}
                    CheckpointLookup::Corrupt(message) => {
                        // Recompute and overwrite; count the corruption.
                        obs.inc("checkpoint.corrupt", 1);
                        let mut span = obs.span("checkpoint_corrupt");
                        span.arg("design", module.name.clone());
                        span.arg("error", message);
                    }
                }
            }
        }

        let supervisor = Supervisor::new(
            self.supervision.clone(),
            self.fault_plan.clone(),
            &module.name,
        );
        // The design span travels with the flight (a borrowing SpanGuard
        // could not); it is recorded into the collector when the verdict
        // lands, covering every stage in between.
        let mut design_span = OwnedSpan::start("design");
        design_span.arg("design", module.name.clone());
        let mut supervision: Vec<StageLog> = Vec::new();

        let mut hls_span = obs.span("hls");
        let run =
            supervisor.run_stage("hls", |_| self.synthesize(module), SynthError::is_transient);
        record_stage(&obs, &run.log);
        supervision.push(run.log);
        match run.result {
            Ok(design) => {
                hls_span.end();
                Flight::Flying(Box::new(InFlight {
                    design,
                    impl_result: None,
                    supervisor,
                    obs,
                    design_span,
                    supervision,
                }))
            }
            Err(failure) => {
                let failure = DesignFailure::classify("hls", failure, DesignFailure::Synth);
                hls_span.arg("error", failure.to_string());
                drop(hls_span);
                design_span.arg("outcome", "failed");
                design_span.record_into(&obs);
                Flight::Done(Box::new(self.fail_design(
                    module,
                    failure,
                    supervision,
                    obs,
                    store,
                )))
            }
        }
    }

    /// Stage 2: supervised place-and-route. Infallible by type — failures
    /// here are panics (real or injected) or budget overruns.
    fn stage_par(
        &self,
        module: &Module,
        flight: Flight,
        store: Option<&CheckpointStore>,
    ) -> Flight {
        let mut fl = match flight {
            Flight::Flying(fl) => fl,
            done @ Flight::Done(_) => return done,
        };
        let run = fl.supervisor.run_stage(
            "par",
            |_| Ok(run_par_obs(&fl.design, &self.device, &self.par, &fl.obs)),
            |_: &NoError| false,
        );
        record_stage(&fl.obs, &run.log);
        fl.supervision.push(run.log);
        match run.result {
            Ok((impl_result, _par)) => {
                fl.impl_result = Some(impl_result);
                Flight::Flying(fl)
            }
            Err(failure) => {
                let failure = DesignFailure::classify("par", failure, |e: NoError| match e {});
                let InFlight {
                    obs,
                    mut design_span,
                    supervision,
                    ..
                } = *fl;
                design_span.arg("outcome", "failed");
                design_span.record_into(&obs);
                Flight::Done(Box::new(self.fail_design(
                    module,
                    failure,
                    supervision,
                    obs,
                    store,
                )))
            }
        }
    }

    /// Stage 3: supervised back-trace + feature extraction, then the
    /// verdict: checkpoint commit and report assembly. The dataset is
    /// rebuilt per attempt, so a failed attempt can't leak partial
    /// samples.
    fn stage_features(
        &self,
        module: &Module,
        flight: Flight,
        store: Option<&CheckpointStore>,
    ) -> DesignResult {
        let fl = match flight {
            Flight::Flying(fl) => fl,
            Flight::Done(done) => return *done,
        };
        let InFlight {
            design,
            impl_result,
            supervisor,
            obs,
            mut design_span,
            mut supervision,
        } = *fl;
        let impl_result = impl_result.expect("stage_par runs before stage_features");
        let route_stats = impl_result.route.stats;
        let place_stats = impl_result.placement.stats;

        let mut features_span = obs.span("features");
        let run = supervisor.run_stage(
            "features",
            |_| {
                let mut ds = CongestionDataset::new();
                ds.add_design_with(&design, &impl_result, &self.device, self.extract)?;
                Ok(ds)
            },
            BacktraceError::is_transient,
        );
        record_stage(&obs, &run.log);
        supervision.push(run.log);
        let ds = match run.result {
            Ok(ds) => {
                features_span.end();
                ds
            }
            Err(failure) => {
                let failure =
                    DesignFailure::classify("features", failure, DesignFailure::Backtrace);
                features_span.arg("error", failure.to_string());
                drop(features_span);
                design_span.arg("outcome", "failed");
                design_span.record_into(&obs);
                return self.fail_design(module, failure, supervision, obs, store);
            }
        };

        obs.inc("dataset.designs_ok", 1);
        obs.inc("dataset.samples", ds.len() as u64);
        design_span.arg("samples", ds.len().to_string());
        design_span.record_into(&obs);

        let checkpoint_error = store.and_then(|s| {
            self.commit_checkpoint(
                s,
                &obs,
                CheckpointEntry {
                    design: module.name.clone(),
                    outcome: Ok(ds.clone()),
                },
            )
        });
        let rec = obs.finish();
        let report = DesignReport {
            name: module.name.clone(),
            outcome: Ok(ds.len()),
            timings: StageTimings::from_record(&rec),
            route_stats,
            place_stats,
            supervision,
            from_checkpoint: false,
            checkpoint_error,
        };
        (ds, report, rec)
    }

    /// Failure tail of [`Self::implement_for_dataset`]: bump counters,
    /// checkpoint the verdict, and build the report. The caller has
    /// already closed its spans.
    fn fail_design(
        &self,
        module: &Module,
        failure: DesignFailure,
        supervision: Vec<StageLog>,
        obs: Collector,
        store: Option<&CheckpointStore>,
    ) -> DesignResult {
        obs.inc("dataset.designs_failed", 1);
        let checkpoint_error = store.and_then(|s| {
            self.commit_checkpoint(
                s,
                &obs,
                CheckpointEntry {
                    design: module.name.clone(),
                    outcome: Err(failure.recorded()),
                },
            )
        });
        let rec = obs.finish();
        let report = DesignReport {
            name: module.name.clone(),
            outcome: Err(failure),
            timings: StageTimings::from_record(&rec),
            route_stats: RouteStats::default(),
            place_stats: PlaceStats::default(),
            supervision,
            from_checkpoint: false,
            checkpoint_error,
        };
        (CongestionDataset::new(), report, rec)
    }

    /// Write one design's verdict to the checkpoint store. A store failure
    /// degrades to a warning on the report (the samples are already in
    /// hand) rather than failing the design.
    fn commit_checkpoint(
        &self,
        store: &CheckpointStore,
        obs: &Collector,
        entry: CheckpointEntry,
    ) -> Option<String> {
        match store.store(&entry) {
            Ok(()) => {
                obs.inc("checkpoint.stored", 1);
                None
            }
            Err(e) => {
                obs.inc("checkpoint.errors", 1);
                Some(e.to_string())
            }
        }
    }

    /// Resume tail: turn a committed checkpoint entry into a report
    /// without running any stage.
    fn replay_checkpoint(
        &self,
        module: &Module,
        entry: CheckpointEntry,
        obs: Collector,
    ) -> DesignResult {
        obs.inc("checkpoint.resumed", 1);
        let mut design_span = obs.span("design");
        design_span.arg("design", module.name.clone());
        design_span.arg("outcome", "resumed");
        let outcome = match entry.outcome {
            Ok(ds) => {
                obs.inc("dataset.designs_ok", 1);
                obs.inc("dataset.samples", ds.len() as u64);
                design_span.arg("samples", ds.len().to_string());
                Ok(ds)
            }
            Err(recorded) => {
                obs.inc("dataset.designs_failed", 1);
                Err(recorded)
            }
        };
        drop(design_span);
        let rec = obs.finish();
        let (ds, outcome) = match outcome {
            Ok(ds) => {
                let n = ds.len();
                (ds, Ok(n))
            }
            Err(recorded) => (
                CongestionDataset::new(),
                Err(DesignFailure::Recorded(recorded)),
            ),
        };
        let report = DesignReport {
            name: module.name.clone(),
            outcome,
            timings: StageTimings::from_record(&rec),
            route_stats: RouteStats::default(),
            place_stats: PlaceStats::default(),
            supervision: Vec::new(),
            from_checkpoint: true,
            checkpoint_error: None,
        };
        (ds, report, rec)
    }
}

/// What one design contributes to a build: its samples, its report row,
/// and its observability record.
type DesignResult = (CongestionDataset, DesignReport, ObsRecord);

/// A design mid-journey through the staged executors. Everything the next
/// stage needs travels with the design — supervisor, collector, open
/// design span, supervision log — so any worker of the next stage's pool
/// can pick it up.
struct InFlight {
    design: SynthesizedDesign,
    /// `None` until `stage_par` completes.
    impl_result: Option<ImplResult>,
    supervisor: Supervisor,
    obs: Collector,
    design_span: OwnedSpan,
    supervision: Vec<StageLog>,
}

/// Inter-stage carrier: a design still flying, or one whose verdict is
/// already known (stage failure or checkpoint replay) — later stages pass
/// `Done` through untouched, preserving the output slot.
enum Flight {
    Flying(Box<InFlight>),
    Done(Box<DesignResult>),
}

/// Fold a stage's supervision log into the design's obskit counters.
fn record_stage(obs: &Collector, log: &StageLog) {
    obs.inc("faultkit.injected", u64::from(log.injected));
    obs.inc("faultkit.retries", u64::from(log.retries()));
    obs.inc("faultkit.recovered_panics", u64::from(log.panics_caught()));
    obs.inc("faultkit.timeouts", u64::from(log.timeouts()));
}

/// Uninhabited error type for supervised stages that are infallible by
/// construction (place-and-route): the only way such a stage fails is a
/// panic or a budget overrun, both handled by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoError {}

impl fmt::Display for NoError {
    fn fmt(&self, _: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {}
    }
}

impl Default for CongestionFlow {
    fn default() -> Self {
        CongestionFlow::new()
    }
}

/// Wall-clock spent in each pipeline stage while implementing one design.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// High-level synthesis (schedule + bind).
    pub hls: Duration,
    /// Simulated-annealing placement.
    pub place: Duration,
    /// Capacity-aware global routing.
    pub route: Duration,
    /// Congestion-map extraction.
    pub congestion: Duration,
    /// Static timing analysis.
    pub timing: Duration,
    /// Back-tracing + 302-feature extraction.
    pub features: Duration,
}

impl StageTimings {
    /// Derive stage timings from a design's obskit spans (summed per stage
    /// name). This is the only producer of `StageTimings` in the pipeline —
    /// the spans are the single source of timing truth, and this type is
    /// the stable report-facing view of them.
    pub fn from_record(rec: &ObsRecord) -> StageTimings {
        let stage = |name: &str| Duration::from_micros(rec.span_total_us(name));
        StageTimings {
            hls: stage("hls"),
            place: stage("place"),
            route: stage("route"),
            congestion: stage("congestion"),
            timing: stage("timing"),
            features: stage("features"),
        }
    }

    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.hls + self.place + self.route + self.congestion + self.timing + self.features
    }

    /// Accumulate another design's timings into this one.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.hls += other.hls;
        self.place += other.place;
        self.route += other.route;
        self.congestion += other.congestion;
        self.timing += other.timing;
        self.features += other.features;
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hls {} | place {} | route {} | congestion {} | timing {} | features {}",
            fmt_duration(self.hls),
            fmt_duration(self.place),
            fmt_duration(self.route),
            fmt_duration(self.congestion),
            fmt_duration(self.timing),
            fmt_duration(self.features),
        )
    }
}

/// Why one design failed a dataset build — the failure taxonomy. Every
/// variant knows its stage and renders a stable `kind` string, so reports
/// and checkpoints can aggregate failures across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignFailure {
    /// HLS failed (IR verification or an injected synthesis fault).
    Synth(SynthError),
    /// Back-trace / feature extraction failed.
    Backtrace(BacktraceError),
    /// Checkpoint persistence failed in a way that lost the design.
    Persist(PersistError),
    /// A fault plan injected an error at an otherwise-infallible stage and
    /// the retry budget ran out.
    Injected {
        /// Supervised stage name.
        stage: String,
        /// Rendered injected fault.
        message: String,
    },
    /// The stage panicked on its last allowed attempt; the supervisor
    /// caught it at the stage boundary.
    Panic {
        /// Supervised stage name.
        stage: String,
        /// Rendered panic payload.
        message: String,
    },
    /// Every allowed attempt of the stage overran the per-attempt budget.
    Timeout {
        /// Supervised stage name.
        stage: String,
        /// The budget each attempt exceeded.
        budget: Duration,
    },
    /// A failure replayed from a checkpoint written by an earlier run.
    Recorded(RecordedFailure),
}

impl DesignFailure {
    /// Map a supervisor's terminal [`StageFailure`] into the taxonomy.
    /// `wrap` embeds the stage's own typed error.
    fn classify<E>(
        stage: &str,
        failure: StageFailure<E>,
        wrap: impl FnOnce(E) -> DesignFailure,
    ) -> DesignFailure {
        match failure {
            StageFailure::Error(e) => wrap(e),
            StageFailure::Injected { message } => DesignFailure::Injected {
                stage: stage.to_string(),
                message,
            },
            StageFailure::Panic { message, .. } => DesignFailure::Panic {
                stage: stage.to_string(),
                message,
            },
            StageFailure::Timeout { budget } => DesignFailure::Timeout {
                stage: stage.to_string(),
                budget,
            },
        }
    }

    /// Stable taxonomy bucket. A resumed failure keeps the bucket it was
    /// recorded under, so aggregation is identical before and after resume.
    pub fn kind(&self) -> String {
        match self {
            DesignFailure::Synth(SynthError::Injected(_)) => "injected".to_string(),
            DesignFailure::Synth(_) => "synth".to_string(),
            DesignFailure::Backtrace(BacktraceError::Injected(_)) => "injected".to_string(),
            DesignFailure::Backtrace(_) => "backtrace".to_string(),
            DesignFailure::Persist(_) => "persist".to_string(),
            DesignFailure::Injected { .. } => "injected".to_string(),
            DesignFailure::Panic { .. } => "panic".to_string(),
            DesignFailure::Timeout { .. } => "timeout".to_string(),
            DesignFailure::Recorded(r) => r.kind.clone(),
        }
    }

    /// The supervised stage the failure is attributed to.
    pub fn stage(&self) -> String {
        match self {
            DesignFailure::Synth(_) => "hls".to_string(),
            DesignFailure::Backtrace(_) => "features".to_string(),
            DesignFailure::Persist(_) => "persist".to_string(),
            DesignFailure::Injected { stage, .. }
            | DesignFailure::Panic { stage, .. }
            | DesignFailure::Timeout { stage, .. } => stage.clone(),
            DesignFailure::Recorded(r) => r.stage.clone(),
        }
    }

    /// The checkpoint-file form of this failure. Round-trips through
    /// [`DesignFailure::Recorded`] with `kind`/`stage` preserved.
    fn recorded(&self) -> RecordedFailure {
        match self {
            DesignFailure::Recorded(r) => r.clone(),
            other => RecordedFailure {
                kind: other.kind(),
                stage: other.stage(),
                message: other.to_string(),
            },
        }
    }
}

impl fmt::Display for DesignFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignFailure::Synth(e) => write!(f, "{e}"),
            DesignFailure::Backtrace(e) => write!(f, "{e}"),
            DesignFailure::Persist(e) => write!(f, "{e}"),
            DesignFailure::Injected { stage, message } => {
                write!(f, "[{stage}] {message}")
            }
            DesignFailure::Panic { stage, message } => {
                write!(f, "[{stage}] panic: {message}")
            }
            DesignFailure::Timeout { stage, budget } => {
                write!(f, "[{stage}] exceeded stage budget of {budget:?}")
            }
            DesignFailure::Recorded(r) => {
                write!(f, "[{}] {} (from checkpoint)", r.stage, r.message)
            }
        }
    }
}

impl std::error::Error for DesignFailure {}

/// Outcome of implementing one design during a dataset build.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Module name.
    pub name: String,
    /// Number of samples contributed, or the failure that stopped the
    /// design.
    pub outcome: Result<usize, DesignFailure>,
    /// Per-stage wall-clock for this design (stages not reached stay zero).
    pub timings: StageTimings,
    /// Router search-effort counters for this design (zero when the design
    /// failed before routing).
    pub route_stats: RouteStats,
    /// Placer annealing-effort counters for this design (zero when the
    /// design failed before placement).
    pub place_stats: PlaceStats,
    /// Supervision log of every stage attempted: attempts, backoff
    /// schedule, injected-fault counts. Deterministic across worker counts
    /// (`StageLog: PartialEq`); empty for checkpoint-resumed designs.
    pub supervision: Vec<StageLog>,
    /// True when this verdict was replayed from a checkpoint rather than
    /// computed.
    pub from_checkpoint: bool,
    /// Warning from the checkpoint store, when the design itself succeeded
    /// but its entry could not be written (the build keeps the samples).
    pub checkpoint_error: Option<String>,
}

impl DesignReport {
    /// True when the design contributed samples.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Total retries across this design's supervised stages.
    pub fn retries(&self) -> u32 {
        self.supervision.iter().map(StageLog::retries).sum()
    }
}

/// Result of [`CongestionFlow::build_dataset_report`]: the merged dataset
/// plus per-design outcomes and timings.
#[derive(Debug, Clone)]
pub struct DatasetBuildReport {
    /// Samples from every successful design, in design input order.
    pub dataset: CongestionDataset,
    /// Per-design outcome and stage timings, in design input order.
    pub designs: Vec<DesignReport>,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall-clock of the build.
    pub wall: Duration,
    /// Merged observability record: per-design/per-stage spans (exportable
    /// as a Chrome trace via [`obskit::sink::chrome_trace_json`]) and the
    /// metrics registry (counters/histograms deterministic for any worker
    /// count; see [`obskit::MetricsSnapshot::deterministic_digest`]).
    pub obs: ObsRecord,
}

impl DatasetBuildReport {
    /// Number of designs that contributed samples.
    pub fn succeeded(&self) -> usize {
        self.designs.iter().filter(|d| d.is_ok()).count()
    }

    /// Number of designs that failed.
    pub fn failed(&self) -> usize {
        self.designs.len() - self.succeeded()
    }

    /// Per-stage wall-clock summed over all designs (CPU time, so with
    /// multiple workers this exceeds [`Self::wall`]).
    pub fn stage_totals(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for d in &self.designs {
            t.accumulate(&d.timings);
        }
        t
    }

    /// Router search-effort counters summed over all designs.
    pub fn route_stats_totals(&self) -> RouteStats {
        let mut s = RouteStats::default();
        for d in &self.designs {
            s.accumulate(&d.route_stats);
        }
        s
    }

    /// Placer annealing-effort counters summed over all designs.
    pub fn place_stats_totals(&self) -> PlaceStats {
        let mut s = PlaceStats::default();
        for d in &self.designs {
            s.accumulate(&d.place_stats);
        }
        s
    }

    /// Number of designs whose verdicts were replayed from a checkpoint.
    pub fn resumed(&self) -> usize {
        self.designs.iter().filter(|d| d.from_checkpoint).count()
    }

    /// Total supervised retries across all designs.
    pub fn total_retries(&self) -> u32 {
        self.designs.iter().map(DesignReport::retries).sum()
    }

    /// Failed designs bucketed by taxonomy kind (`synth`, `panic`,
    /// `timeout`, `injected`, ...), in stable alphabetical order.
    pub fn failure_taxonomy(&self) -> BTreeMap<String, usize> {
        let mut buckets = BTreeMap::new();
        for d in &self.designs {
            if let Err(e) = &d.outcome {
                *buckets.entry(e.kind()).or_insert(0) += 1;
            }
        }
        buckets
    }

    /// Collapse to the fail-fast result the serial pipeline used to return:
    /// the dataset, or the first (in input order) failed design's failure.
    ///
    /// # Errors
    /// Returns the first design failure when any design failed.
    pub fn into_result(self) -> Result<CongestionDataset, DesignFailure> {
        for d in self.designs {
            d.outcome?;
        }
        Ok(self.dataset)
    }

    /// Human-readable per-design and aggregate timing breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dataset build: {} designs ({} ok, {} failed), {} worker{}, wall {}\n",
            self.designs.len(),
            self.succeeded(),
            self.failed(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            fmt_duration(self.wall),
        ));
        if self.resumed() > 0 {
            out.push_str(&format!(
                "  resumed from checkpoint: {} design{}\n",
                self.resumed(),
                if self.resumed() == 1 { "" } else { "s" },
            ));
        }
        if self.total_retries() > 0 {
            out.push_str(&format!("  supervised retries: {}\n", self.total_retries()));
        }
        let taxonomy = self.failure_taxonomy();
        if !taxonomy.is_empty() {
            let buckets: Vec<String> = taxonomy
                .iter()
                .map(|(kind, n)| format!("{kind} ×{n}"))
                .collect();
            out.push_str(&format!("  failure taxonomy: {}\n", buckets.join(", ")));
        }
        out.push_str(&format!("  stage totals: {}\n", self.stage_totals()));
        out.push_str(&format!("  placer: {}\n", self.place_stats_totals()));
        out.push_str(&format!("  router: {}\n", self.route_stats_totals()));
        out.push_str(&format!(
            "  {:<24} {:>8} {:>10}  stages\n",
            "design", "samples", "total"
        ));
        for d in &self.designs {
            let cached = if d.from_checkpoint { " (cached)" } else { "" };
            match &d.outcome {
                Ok(n) => out.push_str(&format!(
                    "  {:<24} {:>8} {:>10}  {}{}\n",
                    d.name,
                    n,
                    fmt_duration(d.timings.total()),
                    d.timings,
                    cached,
                )),
                // A failed design still shows the time it spent in the
                // stages it reached before dying — partial timings are
                // recorded on the error path, not dropped.
                Err(e) => out.push_str(&format!(
                    "  {:<24} {:>8} {:>10}  {}{}  FAILED[{}]: {e}\n",
                    d.name,
                    "-",
                    fmt_duration(d.timings.total()),
                    d.timings,
                    cached,
                    e.kind(),
                )),
            }
            if let Some(w) = &d.checkpoint_error {
                out.push_str(&format!("    checkpoint warning: {w}\n"));
            }
        }
        out
    }
}

/// Compact duration rendering: sub-millisecond in µs, sub-second in ms,
/// otherwise seconds.
fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

// Every type that crosses worker threads during a dataset build. A future
// `Rc`/`RefCell` in any flow type should fail to compile here, not at the
// `par_map` call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CongestionFlow>();
    assert_send_sync::<Module>();
    assert_send_sync::<CongestionDataset>();
    assert_send_sync::<DatasetBuildReport>();
    assert_send_sync::<SynthError>();
    assert_send_sync::<DesignFailure>();
    assert_send_sync::<CheckpointStore>();
    assert_send_sync::<Supervisor>();
    // Finished records are plain data; only the live `Collector` is
    // single-threaded.
    assert_send_sync::<ObsRecord>();
    // The pipelined executor hands flights between stage pools — they
    // must cross threads by move (the Collector inside is Send, not Sync).
    const fn assert_send<T: Send>() {}
    assert_send::<Flight>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::filter::{filter_marginal, FilterOptions};
    use crate::predict::{CongestionPredictor, ModelKind, TrainOptions};
    use hls_ir::frontend::compile_named;
    use hls_ir::Operand;

    fn suite() -> Vec<Module> {
        let sources = [
            "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
            "int32 f(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
            "int32 f(int32 x, int32 y) { return (x * y) + (x - y) * 3; }",
        ];
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| compile_named(s, &format!("d{i}")).unwrap())
            .collect()
    }

    /// A module that compiles but fails IR verification: an operand claims
    /// more wires than its producer drives (same corruption the `hls_ir`
    /// verifier tests use).
    fn broken_module(name: &str) -> Module {
        let mut m = compile_named("int32 f(int32 x, int32 y) { return x + y; }", name).unwrap();
        let top = m.top;
        let f = m.function_mut(top);
        let victim = f
            .ops
            .iter()
            .find(|o| !o.operands.is_empty())
            .map(|o| o.id)
            .unwrap();
        let src = f.op(victim).operands[0].src;
        f.op_mut(victim).operands[0] = Operand::new(src, u16::MAX);
        m
    }

    #[test]
    fn end_to_end_small_training_run() {
        let flow = CongestionFlow::fast();
        let ds = flow.build_dataset(&suite()).unwrap();
        assert!(ds.len() > 20, "dataset too small: {}", ds.len());

        let filtered = filter_marginal(&ds, &FilterOptions::default());
        assert!(filtered.kept.len() <= ds.len());

        let (train, test) = filtered.kept.split(0.2, 9);
        let p = CongestionPredictor::train(
            ModelKind::Gbrt,
            Target::Vertical,
            &train,
            &TrainOptions::fast(),
        );
        let acc = p.evaluate(&test);
        assert!(acc.mae.is_finite() && acc.mae >= 0.0);
    }

    #[test]
    fn prediction_phase_needs_no_par() {
        let flow = CongestionFlow::fast();
        let m = compile_named(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i]; } return s; }",
            "predict_me",
        )
        .unwrap();
        let ds = flow.build_dataset(std::slice::from_ref(&m)).unwrap();
        let p = CongestionPredictor::train(
            ModelKind::Linear,
            Target::Average,
            &ds,
            &TrainOptions::fast(),
        );
        // New design: HLS only, then predict.
        let design = flow.synthesize(&m).unwrap();
        let preds = p.predict_design(&design, &flow.device);
        assert!(!preds.is_empty());
        assert!(preds.iter().all(|q| q.predicted.is_finite()));
    }

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        let modules = suite();
        let serial = CongestionFlow::fast()
            .with_workers(1)
            .build_dataset(&modules)
            .unwrap();
        let parallel = CongestionFlow::fast()
            .with_workers(4)
            .build_dataset(&modules)
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pipelined_build_matches_design_parallel_bit_for_bit() {
        let modules = suite();
        let base = CongestionFlow::fast()
            .with_workers(1)
            .build_dataset_report(&modules);
        for workers in [1, 8] {
            let piped = CongestionFlow::fast()
                .with_workers(workers)
                .with_pipeline_depth(2)
                .build_dataset_report(&modules);
            assert_eq!(base.dataset, piped.dataset, "workers = {workers}");
            assert_eq!(
                base.obs.metrics.deterministic_digest(),
                piped.obs.metrics.deterministic_digest(),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn pipelined_build_reports_failures_like_design_parallel() {
        let mut modules = suite();
        modules.insert(1, broken_module("cursed"));
        let report = CongestionFlow::fast()
            .with_workers(4)
            .with_pipeline_depth(1)
            .build_dataset_report(&modules);
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.designs[1].name, "cursed");
        // Failure removes one design's samples, nothing else — same
        // contract as the design-parallel executor.
        let clean = CongestionFlow::fast().build_dataset(&suite()).unwrap();
        assert_eq!(report.dataset, clean);
    }

    #[test]
    fn stage_pools_cover_every_stage() {
        assert_eq!(CongestionFlow::stage_pools(1), [1, 1, 1]);
        assert_eq!(CongestionFlow::stage_pools(2), [1, 1, 1]);
        assert_eq!(CongestionFlow::stage_pools(4), [1, 2, 1]);
        assert_eq!(CongestionFlow::stage_pools(8), [2, 4, 2]);
    }

    #[test]
    fn failed_design_is_reported_not_fatal() {
        let mut modules = suite();
        modules.insert(1, broken_module("cursed"));
        let report = CongestionFlow::fast()
            .with_workers(4)
            .build_dataset_report(&modules);

        assert_eq!(report.designs.len(), 4);
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.designs[1].name, "cursed");
        assert!(report.designs[1].outcome.is_err());
        // Designs after the broken one still contributed samples.
        assert!(report.designs[2].is_ok() && report.designs[3].is_ok());
        assert!(!report.dataset.is_empty());

        // The samples are exactly what a build without the broken design
        // yields — failure removes one design, nothing else.
        let clean = CongestionFlow::fast().build_dataset(&suite()).unwrap();
        assert_eq!(report.dataset, clean);

        // And the fail-fast wrapper surfaces the error.
        assert!(CongestionFlow::fast().build_dataset(&modules).is_err());
    }

    #[test]
    fn report_carries_obs_spans_and_deterministic_counters() {
        let modules = suite();
        let report = CongestionFlow::fast().build_dataset_report(&modules);
        let rec = &report.obs;

        // One design span per module, each annotated with its name.
        let design_spans: Vec<_> = rec.events.iter().filter(|e| e.name == "design").collect();
        assert_eq!(design_spans.len(), modules.len());
        for (m, e) in modules.iter().zip(&design_spans) {
            assert!(e.args.contains(&("design".to_string(), m.name.clone())));
        }
        // Every stage appears as child spans, and the registry agrees with
        // the report.
        for stage in ["hls", "place", "route", "congestion", "timing", "features"] {
            assert_eq!(
                rec.events.iter().filter(|e| e.name == stage).count(),
                modules.len(),
                "missing {stage} spans"
            );
        }
        let m = &rec.metrics;
        assert_eq!(m.counters["dataset.designs"], modules.len() as u64);
        assert_eq!(m.counters["dataset.designs_ok"], report.succeeded() as u64);
        assert_eq!(m.counters["dataset.samples"], report.dataset.len() as u64);
        assert_eq!(
            m.counters["route.expanded_nodes"],
            report.route_stats_totals().expanded_nodes
        );
        // The router's convergence histogram has one sample per recorded
        // pass state (initial + executed refinement passes).
        let h = &m.histograms["route.pass_overflow"];
        assert!(h.count() >= modules.len() as u64);
        // Stage timings are derived from the same spans.
        for d in &report.designs {
            assert!(d.timings.total() > Duration::ZERO);
        }
    }

    #[test]
    fn failed_design_keeps_partial_timings_and_error_span() {
        let modules = vec![broken_module("cursed")];
        let report = CongestionFlow::fast().build_dataset_report(&modules);
        assert_eq!(report.failed(), 1);

        // The failed design's hls span survives, annotated with the error.
        let hls: Vec<_> = report
            .obs
            .events
            .iter()
            .filter(|e| e.name == "hls")
            .collect();
        assert_eq!(hls.len(), 1);
        assert!(hls[0].args.iter().any(|(k, _)| k == "error"));
        // And its partial timing is attributed in the report, consistent
        // with the span.
        assert_eq!(
            report.designs[0].timings.hls,
            Duration::from_micros(hls[0].dur_us)
        );
        assert_eq!(report.obs.metrics.counters["dataset.designs_failed"], 1);
        // The rendered table shows the failed design WITH its stage
        // breakdown (the old renderer dropped it).
        let text = report.render();
        assert!(text.contains("FAILED"));
        let failed_line = text.lines().find(|l| l.contains("FAILED")).unwrap();
        assert!(
            failed_line.contains("hls"),
            "no partial timings: {failed_line}"
        );
    }

    #[test]
    fn report_records_stage_timings_and_renders() {
        let modules = suite();
        let report = CongestionFlow::fast().build_dataset_report(&modules);
        assert_eq!(report.succeeded(), modules.len());
        for d in &report.designs {
            assert!(
                d.timings.total() > Duration::ZERO,
                "{}: no time recorded",
                d.name
            );
        }
        assert!(report.stage_totals().total() >= report.wall / 8);
        let text = report.render();
        assert!(text.contains("3 designs (3 ok, 0 failed)"));
        assert!(text.contains("d0") && text.contains("d2"));
        assert!(text.contains("place"));
    }
}
