//! The end-to-end congestion-prediction pipeline (paper Fig 2).
//!
//! Dataset construction is the most expensive step of the training phase —
//! every design goes through HLS and a full simulated place-and-route — so
//! [`CongestionFlow::build_dataset_report`] fans designs out across worker
//! threads (one design per worker, see [`parkit`]) and merges the per-design
//! samples back **in input order**, making the parallel output bit-identical
//! to the serial path. It is also fault-tolerant: a design that fails IR
//! verification is recorded in the returned [`DatasetBuildReport`] and the
//! build continues with the remaining designs.

use crate::dataset::CongestionDataset;
use fpga_fabric::par::{run_par, run_par_obs, ParOptions};
use fpga_fabric::route::RouteStats;
use fpga_fabric::{Device, ImplResult};
use hls_ir::Module;
use hls_synth::{HlsFlow, HlsOptions, SynthError, SynthesizedDesign};
use obskit::{Collector, ObsRecord};
use std::fmt;
use std::time::{Duration, Instant};

/// Drives HLS + (for the training phase) simulated PAR over designs.
#[derive(Debug, Clone)]
pub struct CongestionFlow {
    /// HLS options.
    pub hls: HlsOptions,
    /// PAR options.
    pub par: ParOptions,
    /// Target device.
    pub device: Device,
    /// Worker threads for dataset construction. `None` (the default) uses
    /// [`parkit::num_threads`], which honours `RAYON_NUM_THREADS`.
    pub workers: Option<usize>,
}

impl CongestionFlow {
    /// Default flow: 10 ns clock on the paper's XC7Z020-like device.
    pub fn new() -> Self {
        CongestionFlow {
            hls: HlsOptions::default(),
            par: ParOptions::default(),
            device: Device::xc7z020(),
            workers: None,
        }
    }

    /// Reduced-effort flow for tests and doc examples.
    pub fn fast() -> Self {
        CongestionFlow {
            par: ParOptions::fast(),
            ..Self::new()
        }
    }

    /// Set an explicit worker count for dataset construction.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// HLS only — the prediction phase's input.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification.
    pub fn synthesize(&self, module: &Module) -> Result<SynthesizedDesign, SynthError> {
        HlsFlow::new(self.hls.clone()).run(module)
    }

    /// Full C-to-FPGA: HLS plus simulated place-and-route — the training
    /// phase's label source.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification.
    pub fn implement(
        &self,
        module: &Module,
    ) -> Result<(SynthesizedDesign, ImplResult), SynthError> {
        let design = self.synthesize(module)?;
        let impl_result = run_par(&design, &self.device, &self.par);
        Ok((design, impl_result))
    }

    /// [`Self::implement`] recording into an [`obskit::Collector`]: a
    /// `design` root span with `hls`/`place`/`route`/`congestion`/`timing`
    /// child spans plus the router's registry metrics. Used by the CLI's
    /// `implement --trace-out`.
    ///
    /// # Errors
    /// Returns [`SynthError`] when the module fails IR verification; the
    /// partial `hls` span (annotated with the error) is still recorded.
    pub fn implement_observed(
        &self,
        module: &Module,
        obs: &Collector,
    ) -> Result<(SynthesizedDesign, ImplResult), SynthError> {
        let mut design_span = obs.span("design");
        design_span.arg("design", module.name.clone());
        let mut hls_span = obs.span("hls");
        let design = match self.synthesize(module) {
            Ok(d) => d,
            Err(e) => {
                hls_span.arg("error", e.to_string());
                drop(hls_span);
                design_span.arg("outcome", "failed");
                return Err(e);
            }
        };
        hls_span.end();
        let (impl_result, _timings) = run_par_obs(&design, &self.device, &self.par, obs);
        Ok((design, impl_result))
    }

    /// Build a labelled dataset from several designs (the paper combines
    /// three suite groups into 8111 samples).
    ///
    /// Compatibility wrapper over [`Self::build_dataset_report`]: same
    /// samples in the same order, but fail-fast in the result type.
    ///
    /// # Errors
    /// Returns the first (in input order) design's synthesis error.
    pub fn build_dataset(&self, modules: &[Module]) -> Result<CongestionDataset, SynthError> {
        self.build_dataset_report(modules).into_result()
    }

    /// Build a labelled dataset, implementing designs on parallel workers
    /// and reporting per-design outcomes and per-stage timings.
    ///
    /// Properties:
    ///
    /// - **Deterministic**: samples are merged in design input order, and
    ///   each design's HLS/PAR run is seeded, so the dataset is
    ///   bit-identical regardless of worker count.
    /// - **Fault-tolerant**: a failing design is recorded in
    ///   [`DatasetBuildReport::designs`] and does not abort the build; all
    ///   remaining designs still contribute samples.
    pub fn build_dataset_report(&self, modules: &[Module]) -> DatasetBuildReport {
        let start = Instant::now();
        let requested = self.workers.unwrap_or_else(parkit::num_threads);
        let results =
            parkit::par_map_threads(requested, modules, |m| self.implement_for_dataset(m));

        // Merge in input order — bit-identical to the serial loop. The
        // per-design obskit records merge under the same rule, so every
        // deterministic metric (counters, histogram buckets) is identical
        // for any worker count; only wall-clocks vary.
        let root = Collector::new();
        let mut dataset = CongestionDataset::new();
        let mut designs = Vec::with_capacity(results.len());
        {
            let mut build_span = root.span("dataset_build");
            build_span.arg("designs", modules.len().to_string());
            for (samples, report, rec) in results {
                dataset.samples.extend(samples);
                designs.push(report);
                root.absorb(rec);
            }
        }
        let wall = start.elapsed();
        root.set_gauge("dataset.wall_ms", wall.as_secs_f64() * 1e3);
        DatasetBuildReport {
            dataset,
            designs,
            workers: requested.clamp(1, modules.len().max(1)),
            wall,
            obs: root.finish(),
        }
    }

    /// The per-worker unit of [`Self::build_dataset_report`]: one design
    /// through HLS → PAR → feature extraction, never panicking on a bad
    /// module.
    ///
    /// Every stage runs inside an obskit span on the design's own
    /// collector, and [`StageTimings`] is derived from those spans — one
    /// measurement substrate instead of two. A design that fails mid-flow
    /// keeps the spans of every stage it reached, so partial timings
    /// survive into the report (the `hls` span of a design that dies in
    /// synthesis still carries the time spent before the error).
    fn implement_for_dataset(
        &self,
        module: &Module,
    ) -> (Vec<crate::dataset::Sample>, DesignReport, ObsRecord) {
        let obs = Collector::new();
        obs.inc("dataset.designs", 1);
        let mut design_span = obs.span("design");
        design_span.arg("design", module.name.clone());

        let mut hls_span = obs.span("hls");
        let design = match self.synthesize(module) {
            Ok(d) => d,
            Err(e) => {
                // Record the partial HLS timing and the error on the span,
                // then finish the collector — the failed stage's time is
                // attributed, not dropped.
                hls_span.arg("error", e.to_string());
                drop(hls_span);
                design_span.arg("outcome", "failed");
                drop(design_span);
                obs.inc("dataset.designs_failed", 1);
                let rec = obs.finish();
                let report = DesignReport {
                    name: module.name.clone(),
                    outcome: Err(e),
                    timings: StageTimings::from_record(&rec),
                    route_stats: RouteStats::default(),
                };
                return (Vec::new(), report, rec);
            }
        };
        hls_span.end();

        let (impl_result, _par) = run_par_obs(&design, &self.device, &self.par, &obs);
        let route_stats = impl_result.route.stats;

        let mut ds = CongestionDataset::new();
        {
            let _span = obs.span("features");
            ds.add_design(&design, &impl_result, &self.device);
        }
        obs.inc("dataset.designs_ok", 1);
        obs.inc("dataset.samples", ds.len() as u64);
        design_span.arg("samples", ds.len().to_string());
        drop(design_span);

        let rec = obs.finish();
        let report = DesignReport {
            name: module.name.clone(),
            outcome: Ok(ds.len()),
            timings: StageTimings::from_record(&rec),
            route_stats,
        };
        (ds.samples, report, rec)
    }
}

impl Default for CongestionFlow {
    fn default() -> Self {
        CongestionFlow::new()
    }
}

/// Wall-clock spent in each pipeline stage while implementing one design.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// High-level synthesis (schedule + bind).
    pub hls: Duration,
    /// Simulated-annealing placement.
    pub place: Duration,
    /// Capacity-aware global routing.
    pub route: Duration,
    /// Congestion-map extraction.
    pub congestion: Duration,
    /// Static timing analysis.
    pub timing: Duration,
    /// Back-tracing + 302-feature extraction.
    pub features: Duration,
}

impl StageTimings {
    /// Derive stage timings from a design's obskit spans (summed per stage
    /// name). This is the only producer of `StageTimings` in the pipeline —
    /// the spans are the single source of timing truth, and this type is
    /// the stable report-facing view of them.
    pub fn from_record(rec: &ObsRecord) -> StageTimings {
        let stage = |name: &str| Duration::from_micros(rec.span_total_us(name));
        StageTimings {
            hls: stage("hls"),
            place: stage("place"),
            route: stage("route"),
            congestion: stage("congestion"),
            timing: stage("timing"),
            features: stage("features"),
        }
    }

    /// Sum of all stage durations.
    pub fn total(&self) -> Duration {
        self.hls + self.place + self.route + self.congestion + self.timing + self.features
    }

    /// Accumulate another design's timings into this one.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.hls += other.hls;
        self.place += other.place;
        self.route += other.route;
        self.congestion += other.congestion;
        self.timing += other.timing;
        self.features += other.features;
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hls {} | place {} | route {} | congestion {} | timing {} | features {}",
            fmt_duration(self.hls),
            fmt_duration(self.place),
            fmt_duration(self.route),
            fmt_duration(self.congestion),
            fmt_duration(self.timing),
            fmt_duration(self.features),
        )
    }
}

/// Outcome of implementing one design during a dataset build.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Module name.
    pub name: String,
    /// Number of samples contributed, or the error that stopped the design.
    pub outcome: Result<usize, SynthError>,
    /// Per-stage wall-clock for this design (stages not reached stay zero).
    pub timings: StageTimings,
    /// Router search-effort counters for this design (zero when the design
    /// failed before routing).
    pub route_stats: RouteStats,
}

impl DesignReport {
    /// True when the design contributed samples.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Result of [`CongestionFlow::build_dataset_report`]: the merged dataset
/// plus per-design outcomes and timings.
#[derive(Debug, Clone)]
pub struct DatasetBuildReport {
    /// Samples from every successful design, in design input order.
    pub dataset: CongestionDataset,
    /// Per-design outcome and stage timings, in design input order.
    pub designs: Vec<DesignReport>,
    /// Worker threads actually used.
    pub workers: usize,
    /// End-to-end wall-clock of the build.
    pub wall: Duration,
    /// Merged observability record: per-design/per-stage spans (exportable
    /// as a Chrome trace via [`obskit::sink::chrome_trace_json`]) and the
    /// metrics registry (counters/histograms deterministic for any worker
    /// count; see [`obskit::MetricsSnapshot::deterministic_digest`]).
    pub obs: ObsRecord,
}

impl DatasetBuildReport {
    /// Number of designs that contributed samples.
    pub fn succeeded(&self) -> usize {
        self.designs.iter().filter(|d| d.is_ok()).count()
    }

    /// Number of designs that failed.
    pub fn failed(&self) -> usize {
        self.designs.len() - self.succeeded()
    }

    /// Per-stage wall-clock summed over all designs (CPU time, so with
    /// multiple workers this exceeds [`Self::wall`]).
    pub fn stage_totals(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for d in &self.designs {
            t.accumulate(&d.timings);
        }
        t
    }

    /// Router search-effort counters summed over all designs.
    pub fn route_stats_totals(&self) -> RouteStats {
        let mut s = RouteStats::default();
        for d in &self.designs {
            s.accumulate(&d.route_stats);
        }
        s
    }

    /// Collapse to the fail-fast result the serial pipeline used to return:
    /// the dataset, or the first (in input order) failed design's error.
    ///
    /// # Errors
    /// Returns the first design error when any design failed.
    pub fn into_result(self) -> Result<CongestionDataset, SynthError> {
        for d in self.designs {
            d.outcome?;
        }
        Ok(self.dataset)
    }

    /// Human-readable per-design and aggregate timing breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dataset build: {} designs ({} ok, {} failed), {} worker{}, wall {}\n",
            self.designs.len(),
            self.succeeded(),
            self.failed(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            fmt_duration(self.wall),
        ));
        out.push_str(&format!("  stage totals: {}\n", self.stage_totals()));
        out.push_str(&format!("  router: {}\n", self.route_stats_totals()));
        out.push_str(&format!(
            "  {:<24} {:>8} {:>10}  stages\n",
            "design", "samples", "total"
        ));
        for d in &self.designs {
            match &d.outcome {
                Ok(n) => out.push_str(&format!(
                    "  {:<24} {:>8} {:>10}  {}\n",
                    d.name,
                    n,
                    fmt_duration(d.timings.total()),
                    d.timings,
                )),
                // A failed design still shows the time it spent in the
                // stages it reached before dying — partial timings are
                // recorded on the error path, not dropped.
                Err(e) => out.push_str(&format!(
                    "  {:<24} {:>8} {:>10}  {}  FAILED: {e}\n",
                    d.name,
                    "-",
                    fmt_duration(d.timings.total()),
                    d.timings,
                )),
            }
        }
        out
    }
}

/// Compact duration rendering: sub-millisecond in µs, sub-second in ms,
/// otherwise seconds.
fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

// Every type that crosses worker threads during a dataset build. A future
// `Rc`/`RefCell` in any flow type should fail to compile here, not at the
// `par_map` call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CongestionFlow>();
    assert_send_sync::<Module>();
    assert_send_sync::<CongestionDataset>();
    assert_send_sync::<DatasetBuildReport>();
    assert_send_sync::<SynthError>();
    // Finished records are plain data; only the live `Collector` is
    // single-threaded.
    assert_send_sync::<ObsRecord>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Target;
    use crate::filter::{filter_marginal, FilterOptions};
    use crate::predict::{CongestionPredictor, ModelKind, TrainOptions};
    use hls_ir::frontend::compile_named;
    use hls_ir::Operand;

    fn suite() -> Vec<Module> {
        let sources = [
            "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
            "int32 f(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
            "int32 f(int32 x, int32 y) { return (x * y) + (x - y) * 3; }",
        ];
        sources
            .iter()
            .enumerate()
            .map(|(i, s)| compile_named(s, &format!("d{i}")).unwrap())
            .collect()
    }

    /// A module that compiles but fails IR verification: an operand claims
    /// more wires than its producer drives (same corruption the `hls_ir`
    /// verifier tests use).
    fn broken_module(name: &str) -> Module {
        let mut m = compile_named("int32 f(int32 x, int32 y) { return x + y; }", name).unwrap();
        let top = m.top;
        let f = m.function_mut(top);
        let victim = f
            .ops
            .iter()
            .find(|o| !o.operands.is_empty())
            .map(|o| o.id)
            .unwrap();
        let src = f.op(victim).operands[0].src;
        f.op_mut(victim).operands[0] = Operand::new(src, u16::MAX);
        m
    }

    #[test]
    fn end_to_end_small_training_run() {
        let flow = CongestionFlow::fast();
        let ds = flow.build_dataset(&suite()).unwrap();
        assert!(ds.len() > 20, "dataset too small: {}", ds.len());

        let filtered = filter_marginal(&ds, &FilterOptions::default());
        assert!(filtered.kept.len() <= ds.len());

        let (train, test) = filtered.kept.split(0.2, 9);
        let p = CongestionPredictor::train(
            ModelKind::Gbrt,
            Target::Vertical,
            &train,
            &TrainOptions::fast(),
        );
        let acc = p.evaluate(&test);
        assert!(acc.mae.is_finite() && acc.mae >= 0.0);
    }

    #[test]
    fn prediction_phase_needs_no_par() {
        let flow = CongestionFlow::fast();
        let m = compile_named(
            "int32 f(int32 a[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i]; } return s; }",
            "predict_me",
        )
        .unwrap();
        let ds = flow.build_dataset(std::slice::from_ref(&m)).unwrap();
        let p = CongestionPredictor::train(
            ModelKind::Linear,
            Target::Average,
            &ds,
            &TrainOptions::fast(),
        );
        // New design: HLS only, then predict.
        let design = flow.synthesize(&m).unwrap();
        let preds = p.predict_design(&design, &flow.device);
        assert!(!preds.is_empty());
        assert!(preds.iter().all(|q| q.predicted.is_finite()));
    }

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        let modules = suite();
        let serial = CongestionFlow::fast()
            .with_workers(1)
            .build_dataset(&modules)
            .unwrap();
        let parallel = CongestionFlow::fast()
            .with_workers(4)
            .build_dataset(&modules)
            .unwrap();
        assert_eq!(serial.samples, parallel.samples);
    }

    #[test]
    fn failed_design_is_reported_not_fatal() {
        let mut modules = suite();
        modules.insert(1, broken_module("cursed"));
        let report = CongestionFlow::fast()
            .with_workers(4)
            .build_dataset_report(&modules);

        assert_eq!(report.designs.len(), 4);
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.designs[1].name, "cursed");
        assert!(report.designs[1].outcome.is_err());
        // Designs after the broken one still contributed samples.
        assert!(report.designs[2].is_ok() && report.designs[3].is_ok());
        assert!(!report.dataset.is_empty());

        // The samples are exactly what a build without the broken design
        // yields — failure removes one design, nothing else.
        let clean = CongestionFlow::fast().build_dataset(&suite()).unwrap();
        assert_eq!(report.dataset.samples, clean.samples);

        // And the fail-fast wrapper surfaces the error.
        assert!(CongestionFlow::fast().build_dataset(&modules).is_err());
    }

    #[test]
    fn report_carries_obs_spans_and_deterministic_counters() {
        let modules = suite();
        let report = CongestionFlow::fast().build_dataset_report(&modules);
        let rec = &report.obs;

        // One design span per module, each annotated with its name.
        let design_spans: Vec<_> = rec.events.iter().filter(|e| e.name == "design").collect();
        assert_eq!(design_spans.len(), modules.len());
        for (m, e) in modules.iter().zip(&design_spans) {
            assert!(e.args.contains(&("design".to_string(), m.name.clone())));
        }
        // Every stage appears as child spans, and the registry agrees with
        // the report.
        for stage in ["hls", "place", "route", "congestion", "timing", "features"] {
            assert_eq!(
                rec.events.iter().filter(|e| e.name == stage).count(),
                modules.len(),
                "missing {stage} spans"
            );
        }
        let m = &rec.metrics;
        assert_eq!(m.counters["dataset.designs"], modules.len() as u64);
        assert_eq!(m.counters["dataset.designs_ok"], report.succeeded() as u64);
        assert_eq!(m.counters["dataset.samples"], report.dataset.len() as u64);
        assert_eq!(
            m.counters["route.expanded_nodes"],
            report.route_stats_totals().expanded_nodes
        );
        // The router's convergence histogram has one sample per recorded
        // pass state (initial + executed refinement passes).
        let h = &m.histograms["route.pass_overflow"];
        assert!(h.count() >= modules.len() as u64);
        // Stage timings are derived from the same spans.
        for d in &report.designs {
            assert!(d.timings.total() > Duration::ZERO);
        }
    }

    #[test]
    fn failed_design_keeps_partial_timings_and_error_span() {
        let modules = vec![broken_module("cursed")];
        let report = CongestionFlow::fast().build_dataset_report(&modules);
        assert_eq!(report.failed(), 1);

        // The failed design's hls span survives, annotated with the error.
        let hls: Vec<_> = report
            .obs
            .events
            .iter()
            .filter(|e| e.name == "hls")
            .collect();
        assert_eq!(hls.len(), 1);
        assert!(hls[0].args.iter().any(|(k, _)| k == "error"));
        // And its partial timing is attributed in the report, consistent
        // with the span.
        assert_eq!(
            report.designs[0].timings.hls,
            Duration::from_micros(hls[0].dur_us)
        );
        assert_eq!(report.obs.metrics.counters["dataset.designs_failed"], 1);
        // The rendered table shows the failed design WITH its stage
        // breakdown (the old renderer dropped it).
        let text = report.render();
        assert!(text.contains("FAILED"));
        let failed_line = text.lines().find(|l| l.contains("FAILED")).unwrap();
        assert!(
            failed_line.contains("hls"),
            "no partial timings: {failed_line}"
        );
    }

    #[test]
    fn report_records_stage_timings_and_renders() {
        let modules = suite();
        let report = CongestionFlow::fast().build_dataset_report(&modules);
        assert_eq!(report.succeeded(), modules.len());
        for d in &report.designs {
            assert!(
                d.timings.total() > Duration::ZERO,
                "{}: no time recorded",
                d.name
            );
        }
        assert!(report.stage_totals().total() >= report.wall / 8);
        let text = report.render();
        assert!(text.contains("3 designs (3 ok, 0 failed)"));
        assert!(text.contains("d0") && text.contains("d2"));
        assert!(text.contains("place"));
    }
}
