//! Dataset distribution fingerprints and drift detection.
//!
//! A [`DatasetFingerprint`] is the compact statistical identity of a
//! [`CongestionDataset`]: one deterministic [`QuantileSketch`] per feature
//! column of the SoA matrix (plus the V/H label columns), the sample and
//! design counts, and an FNV-1a digest over the raw matrix bits. Because
//! the dataset itself is bit-identical for any worker count, so is its
//! fingerprint — byte for byte.
//!
//! [`drift`] compares two fingerprints feature by feature: a
//! population-stability index (PSI) over the shared sketch bins plus the
//! largest absolute quantile shift. This is the check a deployed predictor
//! runs before trusting a new dataset (or a new corpus) against the
//! distribution its model was trained on.

use crate::dataset::CongestionDataset;
use crate::features::feature_names;
use faultkit::json::{parse, Value};
use obskit::QuantileSketch;
use std::collections::BTreeSet;

/// The fingerprint file schema identifier.
pub const FINGERPRINT_SCHEMA: &str = "congest.fingerprint.v1";

/// PSI above this marks a feature as drifted (the conventional 0.25
/// "major shift" threshold).
pub const PSI_DRIFTED: f64 = 0.25;

/// One column's named distribution sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    /// Column name (`feature_names()` entry or `label.vertical` /
    /// `label.horizontal`).
    pub name: String,
    /// The column's value distribution.
    pub sketch: QuantileSketch,
}

/// The statistical identity of one dataset build.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetFingerprint {
    /// Sample count.
    pub samples: u64,
    /// Sorted unique design names contributing samples.
    pub designs: Vec<String>,
    /// Per-column sketches in matrix column order, labels last.
    pub columns: Vec<ColumnSketch>,
    /// FNV-1a digest (hex) over the raw feature-matrix bits and labels.
    pub matrix_digest: String,
}

/// FNV-1a over a stream of f64 bit patterns.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn eat(&mut self, v: f64) {
        for b in v.to_bits().to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl DatasetFingerprint {
    /// Fingerprint a dataset: sketch every feature column and both label
    /// columns, and digest the raw matrix bits in row-major order.
    pub fn of(ds: &CongestionDataset) -> DatasetFingerprint {
        let names = feature_names();
        let mut columns: Vec<ColumnSketch> = names
            .iter()
            .map(|n| ColumnSketch {
                name: n.clone(),
                sketch: QuantileSketch::new(),
            })
            .collect();
        let mut vertical = QuantileSketch::new();
        let mut horizontal = QuantileSketch::new();
        let mut digest = Fnv::new();
        for i in 0..ds.len() {
            let row = ds.features_of(i);
            for (col, &v) in columns.iter_mut().zip(row.iter()) {
                col.sketch.observe(v);
            }
            for &v in row {
                digest.eat(v);
            }
            let s = &ds.samples[i];
            vertical.observe(s.vertical);
            horizontal.observe(s.horizontal);
            digest.eat(s.vertical);
            digest.eat(s.horizontal);
        }
        columns.push(ColumnSketch {
            name: "label.vertical".to_string(),
            sketch: vertical,
        });
        columns.push(ColumnSketch {
            name: "label.horizontal".to_string(),
            sketch: horizontal,
        });
        let designs: BTreeSet<String> = ds.samples.iter().map(|s| s.design.clone()).collect();
        DatasetFingerprint {
            samples: ds.len() as u64,
            designs: designs.into_iter().collect(),
            columns,
            matrix_digest: digest.hex(),
        }
    }

    /// Serialize to the canonical `congest.fingerprint.v1` JSON document.
    /// Columns are an array (order preserved), each embedding its sketch's
    /// canonical form, so identical datasets produce byte-identical files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema\": \"{FINGERPRINT_SCHEMA}\",\n  \"samples\": {},\n",
            self.samples
        ));
        let designs: Vec<String> = self
            .designs
            .iter()
            .map(|d| obskit::json::string(d))
            .collect();
        out.push_str(&format!("  \"designs\": [{}],\n", designs.join(", ")));
        out.push_str(&format!(
            "  \"matrix_digest\": \"{}\",\n  \"columns\": [\n",
            self.matrix_digest
        ));
        for (i, col) in self.columns.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"sketch\": {}}}{}\n",
                obskit::json::string(&col.name),
                col.sketch.to_json(),
                if i + 1 < self.columns.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a fingerprint document produced by [`Self::to_json`].
    ///
    /// # Errors
    /// A human-readable message on malformed JSON, a wrong schema tag, or
    /// a structurally invalid column entry.
    pub fn from_json(text: &str) -> Result<DatasetFingerprint, String> {
        let v = parse(text).map_err(|e| format!("fingerprint JSON: {e}"))?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != FINGERPRINT_SCHEMA {
            return Err(format!(
                "fingerprint schema mismatch: expected {FINGERPRINT_SCHEMA}, got `{schema}`"
            ));
        }
        let samples = v
            .get("samples")
            .and_then(Value::as_u64)
            .ok_or("fingerprint missing `samples`")?;
        let designs = v
            .get("designs")
            .and_then(Value::as_arr)
            .ok_or("fingerprint missing `designs`")?
            .iter()
            .map(|d| d.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()
            .ok_or("fingerprint `designs` must be strings")?;
        let matrix_digest = v
            .get("matrix_digest")
            .and_then(Value::as_str)
            .ok_or("fingerprint missing `matrix_digest`")?
            .to_string();
        let mut columns = Vec::new();
        for (i, col) in v
            .get("columns")
            .and_then(Value::as_arr)
            .ok_or("fingerprint missing `columns`")?
            .iter()
            .enumerate()
        {
            let name = col
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("column {i}: missing `name`"))?
                .to_string();
            let sketch = sketch_from_value(
                col.get("sketch")
                    .ok_or_else(|| format!("column {i}: missing `sketch`"))?,
            )
            .map_err(|e| format!("column {i} ({name}): {e}"))?;
            columns.push(ColumnSketch { name, sketch });
        }
        Ok(DatasetFingerprint {
            samples,
            designs,
            columns,
            matrix_digest,
        })
    }
}

/// Rebuild a [`QuantileSketch`] from its canonical JSON value.
fn sketch_from_value(v: &Value) -> Result<QuantileSketch, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("sketch missing `{key}`"))
    };
    let bins = |key: &str| -> Result<Vec<(i32, u64)>, String> {
        v.get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("sketch missing `{key}`"))?
            .iter()
            .map(|pair| {
                let p = pair.as_arr().filter(|p| p.len() == 2);
                let k = p.and_then(|p| p[0].as_f64()).map(|k| k as i32);
                let c = p.and_then(|p| p[1].as_u64());
                k.zip(c).ok_or_else(|| format!("bad `{key}` bin entry"))
            })
            .collect()
    };
    Ok(QuantileSketch::from_parts(
        num("alpha")?,
        v.get("zero")
            .and_then(Value::as_u64)
            .ok_or("sketch missing `zero`")?,
        num("sum")?,
        num("min")?,
        num("max")?,
        &bins("pos")?,
        &bins("neg")?,
    ))
}

/// One feature's drift between two fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDrift {
    /// Column name.
    pub name: String,
    /// Population-stability index over the shared sketch bins.
    pub psi: f64,
    /// Largest absolute shift across the p10/p25/p50/p75/p90 quantiles,
    /// in the feature's own units.
    pub quantile_shift: f64,
}

/// The drift comparison between two fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-feature drift, sorted by descending PSI (ties by name).
    pub features: Vec<FeatureDrift>,
    /// Mean PSI across columns.
    pub mean_psi: f64,
    /// Columns with PSI ≥ [`PSI_DRIFTED`].
    pub drifted: usize,
    /// Sample counts of the two sides.
    pub samples: (u64, u64),
    /// True when the two matrices are bit-identical.
    pub identical: bool,
}

impl DriftReport {
    /// True when any column crossed the major-drift threshold.
    pub fn severe(&self) -> bool {
        self.drifted > 0
    }

    /// Human-readable drift table (the `hls_congest drift` output),
    /// listing the `top` most-drifted columns.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::from("DATASET DRIFT REPORT\n");
        out.push_str(&format!(
            "samples: {} vs {}   matrices identical: {}\n",
            self.samples.0, self.samples.1, self.identical
        ));
        out.push_str(&format!(
            "mean PSI: {:.4}   columns over {:.2}: {}/{}\n",
            self.mean_psi,
            PSI_DRIFTED,
            self.drifted,
            self.features.len()
        ));
        out.push_str(&format!(
            "{:<40} {:>10} {:>16}\n",
            "column", "PSI", "quantile shift"
        ));
        for f in self.features.iter().take(top) {
            out.push_str(&format!(
                "{:<40} {:>10.4} {:>16.4}\n",
                f.name, f.psi, f.quantile_shift
            ));
        }
        out
    }
}

/// Compare two fingerprints column by column.
///
/// # Errors
/// A message naming the first column-set mismatch — drift across different
/// feature layouts is meaningless.
pub fn drift(a: &DatasetFingerprint, b: &DatasetFingerprint) -> Result<DriftReport, String> {
    if a.columns.len() != b.columns.len() {
        return Err(format!(
            "column count mismatch: {} vs {}",
            a.columns.len(),
            b.columns.len()
        ));
    }
    let mut features = Vec::with_capacity(a.columns.len());
    for (ca, cb) in a.columns.iter().zip(&b.columns) {
        if ca.name != cb.name {
            return Err(format!(
                "column name mismatch: `{}` vs `{}`",
                ca.name, cb.name
            ));
        }
        let quantile_shift = [0.10, 0.25, 0.50, 0.75, 0.90]
            .iter()
            .map(|&q| (ca.sketch.quantile(q) - cb.sketch.quantile(q)).abs())
            .fold(0.0f64, f64::max);
        features.push(FeatureDrift {
            name: ca.name.clone(),
            psi: ca.sketch.psi(&cb.sketch),
            quantile_shift,
        });
    }
    let mean_psi = if features.is_empty() {
        0.0
    } else {
        features.iter().map(|f| f.psi).sum::<f64>() / features.len() as f64
    };
    let drifted = features.iter().filter(|f| f.psi >= PSI_DRIFTED).count();
    let samples = (a.samples, b.samples);
    let identical = a.matrix_digest == b.matrix_digest;
    features.sort_by(|x, y| y.psi.total_cmp(&x.psi).then_with(|| x.name.cmp(&y.name)));
    Ok(DriftReport {
        features,
        mean_psi,
        drifted,
        samples,
        identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::features::FEATURE_COUNT;
    use hls_ir::{FuncId, OpId};

    /// A synthetic dataset whose column 0 is `scale * i` (other columns 0).
    fn synthetic(n: usize, scale: f64) -> CongestionDataset {
        let mut ds = CongestionDataset::new();
        for i in 0..n {
            let mut row = vec![0.0; FEATURE_COUNT];
            row[0] = scale * i as f64;
            row[1] = (i % 7) as f64;
            ds.push(
                Sample {
                    design: format!("d{}", i % 3),
                    func: FuncId(0),
                    op: OpId(i as u32),
                    line: 0,
                    replica: None,
                    vertical: 10.0 + (i % 5) as f64,
                    horizontal: 20.0 + (i % 4) as f64,
                },
                &row,
            );
        }
        ds
    }

    #[test]
    fn fingerprint_shape_and_determinism() {
        let ds = synthetic(40, 1.0);
        let fp = DatasetFingerprint::of(&ds);
        assert_eq!(fp.samples, 40);
        assert_eq!(fp.columns.len(), FEATURE_COUNT + 2);
        assert_eq!(fp.designs, vec!["d0", "d1", "d2"]);
        assert_eq!(fp.columns[FEATURE_COUNT].name, "label.vertical");
        let again = DatasetFingerprint::of(&synthetic(40, 1.0));
        assert_eq!(fp, again);
        assert_eq!(fp.to_json(), again.to_json(), "byte-identical files");
    }

    #[test]
    fn fingerprint_round_trips_through_json() {
        let fp = DatasetFingerprint::of(&synthetic(25, 2.0));
        let parsed = DatasetFingerprint::from_json(&fp.to_json()).unwrap();
        assert_eq!(parsed, fp);
        assert_eq!(parsed.to_json(), fp.to_json());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(DatasetFingerprint::from_json("not json").is_err());
        assert!(DatasetFingerprint::from_json("{\"schema\": \"wrong.v9\"}")
            .unwrap_err()
            .contains("schema mismatch"));
        let fp = DatasetFingerprint::of(&synthetic(5, 1.0));
        let broken = fp.to_json().replace("\"samples\": 5", "\"samples\": -1");
        assert!(DatasetFingerprint::from_json(&broken).is_err());
    }

    #[test]
    fn drift_flags_shifted_columns_and_clears_identical_ones() {
        let a = DatasetFingerprint::of(&synthetic(200, 1.0));
        let b = DatasetFingerprint::of(&synthetic(200, 50.0));
        let report = drift(&a, &b).unwrap();
        assert!(!report.identical);
        assert_eq!(report.features.len(), FEATURE_COUNT + 2);
        // Column 0's distribution moved by 50x: it must rank first with
        // major drift; untouched columns must score ~0.
        let top = &report.features[0];
        assert_eq!(top.name, feature_names()[0]);
        assert!(top.psi > PSI_DRIFTED, "psi = {}", top.psi);
        assert!(top.quantile_shift > 100.0);
        assert!(report.severe());
        let untouched = report
            .features
            .iter()
            .find(|f| f.name == "delay_ns")
            .unwrap();
        assert!(untouched.psi.abs() < 1e-9);

        let same = drift(&a, &DatasetFingerprint::of(&synthetic(200, 1.0))).unwrap();
        assert!(same.identical);
        assert!(!same.severe());
        assert!(same.mean_psi.abs() < 1e-9);
        assert!(same.render(5).contains("matrices identical: true"));
    }

    #[test]
    fn drift_rejects_mismatched_layouts() {
        let a = DatasetFingerprint::of(&synthetic(10, 1.0));
        let mut b = DatasetFingerprint::of(&synthetic(10, 1.0));
        b.columns.pop();
        assert!(drift(&a, &b).unwrap_err().contains("column count"));
        let mut c = DatasetFingerprint::of(&synthetic(10, 1.0));
        c.columns[0].name = "renamed".into();
        assert!(drift(&a, &c).unwrap_err().contains("name mismatch"));
    }
}
