//! Dataset persistence: CSV export/import so the expensive training phase
//! (one full HLS + PAR run per design) can be paid once and reused.

use crate::dataset::{CongestionDataset, Sample};
use crate::features::{feature_names, FEATURE_COUNT};
use hls_ir::{FuncId, OpId, ReplicaTag};
use std::fmt;
use std::io::{BufRead, Write};

/// CSV parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line number (0 for the header).
    pub line: usize,
    /// Error description.
    pub message: String,
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCsvError {}

/// Number of metadata columns before the feature block.
const META_COLS: usize = 8;

/// Write a dataset as CSV (header + one row per sample).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(data: &CongestionDataset, mut w: W) -> std::io::Result<()> {
    // Header.
    write!(
        w,
        "design,func,op,line,replica_group,replica_index,replica_total,has_replica"
    )?;
    for name in feature_names() {
        write!(w, ",{name}")?;
    }
    writeln!(w, ",label_vertical,label_horizontal")?;
    for s in &data.samples {
        let (g, i, t, has) = match s.replica {
            Some(r) => (r.group, r.index, r.total, 1),
            None => (0, 0, 0, 0),
        };
        write!(
            w,
            "{},{},{},{},{},{},{},{}",
            s.design, s.func.0, s.op.0, s.line, g, i, t, has
        )?;
        for v in &s.features {
            write!(w, ",{v}")?;
        }
        writeln!(w, ",{},{}", s.vertical, s.horizontal)?;
    }
    Ok(())
}

/// Read a dataset back from CSV produced by [`write_csv`].
///
/// # Errors
/// Returns a [`ParseCsvError`] for malformed rows or an I/O failure
/// (reported as line 0).
pub fn read_csv<R: BufRead>(r: R) -> Result<CongestionDataset, ParseCsvError> {
    let err = |line: usize, message: String| ParseCsvError { line, message };
    let mut lines = r.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(err(0, "empty input".into()));
    };
    let header = header.map_err(|e| err(0, e.to_string()))?;
    let expected_cols = META_COLS + FEATURE_COUNT + 2;
    let got_cols = header.split(',').count();
    if got_cols != expected_cols {
        return Err(err(
            0,
            format!("expected {expected_cols} columns, header has {got_cols}"),
        ));
    }

    let mut ds = CongestionDataset::new();
    for (ln, line) in lines {
        let line = line.map_err(|e| err(ln + 1, e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != expected_cols {
            return Err(err(
                ln + 1,
                format!("expected {expected_cols} columns, got {}", cols.len()),
            ));
        }
        let pu32 = |i: usize| -> Result<u32, ParseCsvError> {
            cols[i]
                .parse()
                .map_err(|_| err(ln + 1, format!("bad integer `{}`", cols[i])))
        };
        let pf64 = |i: usize| -> Result<f64, ParseCsvError> {
            cols[i]
                .parse()
                .map_err(|_| err(ln + 1, format!("bad float `{}`", cols[i])))
        };
        let replica = if pu32(7)? == 1 {
            Some(ReplicaTag {
                group: pu32(4)?,
                index: pu32(5)?,
                total: pu32(6)?,
            })
        } else {
            None
        };
        let mut features = Vec::with_capacity(FEATURE_COUNT);
        for i in 0..FEATURE_COUNT {
            features.push(pf64(META_COLS + i)?);
        }
        ds.samples.push(Sample {
            design: cols[0].to_string(),
            func: FuncId(pu32(1)?),
            op: OpId(pu32(2)?),
            line: pu32(3)?,
            replica,
            features,
            vertical: pf64(META_COLS + FEATURE_COUNT)?,
            horizontal: pf64(META_COLS + FEATURE_COUNT + 1)?,
        });
    }
    Ok(ds)
}

/// Convenience: save to a file path.
///
/// # Errors
/// Propagates I/O errors.
pub fn save(data: &CongestionDataset, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_csv(data, std::io::BufWriter::new(f))
}

/// Convenience: load from a file path.
///
/// # Errors
/// Returns a [`ParseCsvError`] (I/O failures are reported as line 0).
pub fn load(path: impl AsRef<std::path::Path>) -> Result<CongestionDataset, ParseCsvError> {
    let f = std::fs::File::open(path).map_err(|e| ParseCsvError {
        line: 0,
        message: e.to_string(),
    })?;
    read_csv(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CongestionDataset {
        let mut ds = CongestionDataset::new();
        for i in 0..20usize {
            let mut features = vec![0.0; FEATURE_COUNT];
            features[0] = i as f64;
            features[100] = 0.125 * i as f64;
            ds.samples.push(Sample {
                design: format!("d{}", i % 2),
                func: FuncId(0),
                op: OpId(i as u32),
                line: i as u32 + 1,
                replica: (i % 3 == 0).then_some(ReplicaTag {
                    group: 7,
                    index: i as u32,
                    total: 20,
                }),
                features,
                vertical: 1.5 * i as f64,
                horizontal: 0.5 * i as f64,
            });
        }
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in ds.samples.iter().zip(&back.samples) {
            assert_eq!(a.design, b.design);
            assert_eq!(a.op, b.op);
            assert_eq!(a.line, b.line);
            assert_eq!(a.replica, b.replica);
            assert_eq!(a.features, b.features);
            assert_eq!(a.vertical, b.vertical);
            assert_eq!(a.horizontal, b.horizontal);
        }
    }

    #[test]
    fn header_has_meaningful_names() {
        let mut buf = Vec::new();
        write_csv(&toy(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.contains("bitwidth"));
        assert!(header.contains("rdt_LUT_pred_per_dtcs_1hop"));
        assert!(header.ends_with("label_vertical,label_horizontal"));
    }

    #[test]
    fn malformed_rows_rejected() {
        let mut buf = Vec::new();
        write_csv(&toy(), &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("short,row\n");
        let e = read_csv(std::io::Cursor::new(text)).unwrap_err();
        assert!(e.message.contains("columns"));
    }

    #[test]
    fn wrong_header_rejected() {
        let e = read_csv(std::io::Cursor::new("a,b,c\n")).unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("congestion_core_persist_test.csv");
        save(&toy(), &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.len(), 20);
        std::fs::remove_file(dir).ok();
    }
}
