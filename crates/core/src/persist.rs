//! Dataset persistence: CSV export/import so the expensive training phase
//! (one full HLS + PAR run per design) can be paid once and reused, plus
//! the per-design [`CheckpointStore`] that lets `build_dataset_report`
//! resume a killed run without recomputation.
//!
//! Checkpoint layout (one pair of files per design under the checkpoint
//! directory):
//!
//! ```text
//! <sanitized-name>-<fnv16(name)>.csv    sample rows (successful designs)
//! <sanitized-name>-<fnv16(name)>.json   commit record: digest + outcome
//! ```
//!
//! The JSON meta file is the commit point: it is written last via a
//! `tmp + rename` pair, so a crash mid-store leaves at worst an orphan
//! `.csv`/`.tmp` that the next run overwrites. Entries also record the
//! pipeline *configuration digest*; an entry whose digest disagrees with
//! the current run is treated as a miss, never resumed.

use crate::dataset::{CongestionDataset, Sample};
use crate::features::{feature_names, FEATURE_COUNT};
use faultkit::json::{self, Value};
use hls_ir::{FuncId, OpId, ReplicaTag};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// CSV parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line number (0 for the header).
    pub line: usize,
    /// Error description.
    pub message: String,
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCsvError {}

/// Typed persistence failures. Unlike raw `std::io::Error` these are
/// cloneable and comparable, so they can ride inside per-design pipeline
/// reports and deterministic supervision logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Filesystem-level failure (open/create/rename/write).
    Io {
        /// Path the operation targeted.
        path: String,
        /// OS error description.
        message: String,
    },
    /// A dataset CSV file failed to parse.
    Csv {
        /// Path of the offending file.
        path: String,
        /// Underlying row-level error.
        error: ParseCsvError,
    },
    /// A checkpoint meta (JSON) file failed to parse or is missing fields.
    Meta {
        /// Path of the offending file.
        path: String,
        /// What was wrong.
        message: String,
    },
}

impl PersistError {
    fn io(path: &Path, e: std::io::Error) -> Self {
        PersistError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, message } => write!(f, "io error at {path}: {message}"),
            PersistError::Csv { path, error } => write!(f, "{path}: {error}"),
            PersistError::Meta { path, message } => {
                write!(f, "bad checkpoint meta {path}: {message}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Number of metadata columns before the feature block.
const META_COLS: usize = 8;

/// Write a dataset as CSV (header + one row per sample).
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(data: &CongestionDataset, mut w: W) -> std::io::Result<()> {
    // Header.
    write!(
        w,
        "design,func,op,line,replica_group,replica_index,replica_total,has_replica"
    )?;
    for name in feature_names() {
        write!(w, ",{name}")?;
    }
    writeln!(w, ",label_vertical,label_horizontal")?;
    for (row, s) in data.samples.iter().enumerate() {
        let (g, i, t, has) = match s.replica {
            Some(r) => (r.group, r.index, r.total, 1),
            None => (0, 0, 0, 0),
        };
        write!(
            w,
            "{},{},{},{},{},{},{},{}",
            s.design, s.func.0, s.op.0, s.line, g, i, t, has
        )?;
        for v in data.features_of(row) {
            write!(w, ",{v}")?;
        }
        writeln!(w, ",{},{}", s.vertical, s.horizontal)?;
    }
    Ok(())
}

/// Read a dataset back from CSV produced by [`write_csv`].
///
/// # Errors
/// Returns a [`ParseCsvError`] for malformed rows or an I/O failure
/// (reported as line 0).
pub fn read_csv<R: BufRead>(r: R) -> Result<CongestionDataset, ParseCsvError> {
    let err = |line: usize, message: String| ParseCsvError { line, message };
    let mut lines = r.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(err(0, "empty input".into()));
    };
    let header = header.map_err(|e| err(0, e.to_string()))?;
    let expected_cols = META_COLS + FEATURE_COUNT + 2;
    let got_cols = header.split(',').count();
    if got_cols != expected_cols {
        return Err(err(
            0,
            format!("expected {expected_cols} columns, header has {got_cols}"),
        ));
    }

    let mut ds = CongestionDataset::new();
    for (ln, line) in lines {
        let line = line.map_err(|e| err(ln + 1, e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != expected_cols {
            return Err(err(
                ln + 1,
                format!("expected {expected_cols} columns, got {}", cols.len()),
            ));
        }
        let pu32 = |i: usize| -> Result<u32, ParseCsvError> {
            cols[i]
                .parse()
                .map_err(|_| err(ln + 1, format!("bad integer `{}`", cols[i])))
        };
        let pf64 = |i: usize| -> Result<f64, ParseCsvError> {
            cols[i]
                .parse()
                .map_err(|_| err(ln + 1, format!("bad float `{}`", cols[i])))
        };
        let replica = if pu32(7)? == 1 {
            Some(ReplicaTag {
                group: pu32(4)?,
                index: pu32(5)?,
                total: pu32(6)?,
            })
        } else {
            None
        };
        let mut features = Vec::with_capacity(FEATURE_COUNT);
        for i in 0..FEATURE_COUNT {
            features.push(pf64(META_COLS + i)?);
        }
        ds.push(
            Sample {
                design: cols[0].to_string(),
                func: FuncId(pu32(1)?),
                op: OpId(pu32(2)?),
                line: pu32(3)?,
                replica,
                vertical: pf64(META_COLS + FEATURE_COUNT)?,
                horizontal: pf64(META_COLS + FEATURE_COUNT + 1)?,
            },
            &features,
        );
    }
    Ok(ds)
}

/// Convenience: save to a file path.
///
/// # Errors
/// Returns [`PersistError::Io`] with the offending path on any I/O
/// failure.
pub fn save(data: &CongestionDataset, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let f = std::fs::File::create(path).map_err(|e| PersistError::io(path, e))?;
    write_csv(data, std::io::BufWriter::new(f)).map_err(|e| PersistError::io(path, e))
}

/// Convenience: load from a file path.
///
/// # Errors
/// Returns [`PersistError::Io`] when the file cannot be opened and
/// [`PersistError::Csv`] when its contents are malformed.
pub fn load(path: impl AsRef<Path>) -> Result<CongestionDataset, PersistError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path).map_err(|e| PersistError::io(path, e))?;
    read_csv(std::io::BufReader::new(f)).map_err(|error| PersistError::Csv {
        path: path.display().to_string(),
        error,
    })
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// A failure recorded in a checkpoint: the taxonomy `kind`, the pipeline
/// stage it occurred in, and a human-readable message. Resuming a run
/// replays recorded failures instead of re-running the design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedFailure {
    /// Taxonomy bucket (e.g. `synth`, `panic`, `timeout`, `injected`).
    pub kind: String,
    /// Stage where the design failed (`hls`, `par`, `features`, ...).
    pub stage: String,
    /// Failure description.
    pub message: String,
}

/// One design's checkpointed outcome: either its samples or the failure
/// that exhausted its retry budget. Failed designs are checkpointed too —
/// `--resume` re-runs *nothing* that already ran to a verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry {
    /// Design name (module name).
    pub design: String,
    /// Samples on success, recorded failure otherwise.
    pub outcome: Result<CongestionDataset, RecordedFailure>,
}

/// Result of looking a design up in a [`CheckpointStore`].
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointLookup {
    /// A committed entry with a matching configuration digest.
    Hit(CheckpointEntry),
    /// No committed entry (or one written under a different configuration).
    Miss,
    /// An entry exists but cannot be read back — the design must be
    /// recomputed and the entry overwritten.
    Corrupt(String),
}

/// Incremental per-design checkpoint directory keyed by a pipeline
/// configuration digest.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    digest: u64,
}

/// Strip a design name down to filesystem-safe characters. Uniqueness is
/// restored by the fnv16 suffix added in [`CheckpointStore::stem`].
fn sanitize(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .take(64)
        .collect();
    if safe.is_empty() {
        "design".to_string()
    } else {
        safe
    }
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory. `digest` is the
    /// configuration digest of the current run; entries written under any
    /// other digest are invisible to lookups.
    ///
    /// # Errors
    /// Returns [`PersistError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>, digest: u64) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| PersistError::io(&dir, e))?;
        Ok(CheckpointStore { dir, digest })
    }

    /// The configuration digest this store was opened with.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Unique, filesystem-safe file stem for a design.
    fn stem(&self, design: &str) -> String {
        format!(
            "{}-{:08x}",
            sanitize(design),
            faultkit::fnv1a(&[design.as_bytes()]) as u32
        )
    }

    fn meta_path(&self, design: &str) -> PathBuf {
        self.dir.join(format!("{}.json", self.stem(design)))
    }

    fn csv_path(&self, design: &str) -> PathBuf {
        self.dir.join(format!("{}.csv", self.stem(design)))
    }

    /// Look a design up. Missing or digest-mismatched entries are a
    /// [`CheckpointLookup::Miss`]; unreadable ones are
    /// [`CheckpointLookup::Corrupt`] (callers recompute and overwrite in
    /// both cases, but may count corruption separately).
    pub fn lookup(&self, design: &str) -> CheckpointLookup {
        let meta_path = self.meta_path(design);
        let text = match std::fs::read_to_string(&meta_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CheckpointLookup::Miss,
            Err(e) => {
                return CheckpointLookup::Corrupt(PersistError::io(&meta_path, e).to_string())
            }
        };
        match self.parse_meta(design, &meta_path, &text) {
            Ok(Some(entry)) => CheckpointLookup::Hit(entry),
            Ok(None) => CheckpointLookup::Miss,
            Err(e) => CheckpointLookup::Corrupt(e.to_string()),
        }
    }

    /// Parse a meta file; `Ok(None)` means a digest mismatch.
    fn parse_meta(
        &self,
        design: &str,
        meta_path: &Path,
        text: &str,
    ) -> Result<Option<CheckpointEntry>, PersistError> {
        let bad = |message: String| PersistError::Meta {
            path: meta_path.display().to_string(),
            message,
        };
        let v = json::parse(text).map_err(|e| bad(e.to_string()))?;
        let field = |key: &str| -> Result<String, PersistError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("missing string field `{key}`")))
        };
        if field("design")? != design {
            return Err(bad("design name mismatch".into()));
        }
        if field("digest")? != format!("{:016x}", self.digest) {
            return Ok(None);
        }
        let entry = match field("outcome")?.as_str() {
            "ok" => {
                let samples = v
                    .get("samples")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad("missing `samples` count".into()))?;
                let csv_path = self.csv_path(design);
                let data = load(&csv_path)?;
                if data.len() as u64 != samples {
                    return Err(bad(format!(
                        "sample count mismatch: meta says {samples}, csv has {}",
                        data.len()
                    )));
                }
                CheckpointEntry {
                    design: design.to_string(),
                    outcome: Ok(data),
                }
            }
            "failed" => {
                let fail = v
                    .get("failure")
                    .ok_or_else(|| bad("missing `failure` object".into()))?;
                let part = |key: &str| -> Result<String, PersistError> {
                    fail.get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| bad(format!("missing failure field `{key}`")))
                };
                CheckpointEntry {
                    design: design.to_string(),
                    outcome: Err(RecordedFailure {
                        kind: part("kind")?,
                        stage: part("stage")?,
                        message: part("message")?,
                    }),
                }
            }
            other => return Err(bad(format!("unknown outcome `{other}`"))),
        };
        Ok(Some(entry))
    }

    /// Persist one design's outcome atomically: payload CSV first (for
    /// successes), then the JSON meta commit record, each via
    /// `tmp + rename`.
    ///
    /// # Errors
    /// Returns [`PersistError::Io`] on any filesystem failure.
    pub fn store(&self, entry: &CheckpointEntry) -> Result<(), PersistError> {
        let mut meta: BTreeMap<String, Value> = BTreeMap::new();
        meta.insert("design".into(), Value::Str(entry.design.clone()));
        meta.insert("digest".into(), Value::Str(format!("{:016x}", self.digest)));
        match &entry.outcome {
            Ok(data) => {
                let csv_path = self.csv_path(&entry.design);
                let tmp = csv_path.with_extension("csv.tmp");
                let mut buf = Vec::new();
                write_csv(data, &mut buf).map_err(|e| PersistError::io(&tmp, e))?;
                std::fs::write(&tmp, &buf).map_err(|e| PersistError::io(&tmp, e))?;
                std::fs::rename(&tmp, &csv_path).map_err(|e| PersistError::io(&csv_path, e))?;
                meta.insert("outcome".into(), Value::Str("ok".into()));
                meta.insert("samples".into(), Value::Num(data.len() as f64));
            }
            Err(f) => {
                let mut failure: BTreeMap<String, Value> = BTreeMap::new();
                failure.insert("kind".into(), Value::Str(f.kind.clone()));
                failure.insert("stage".into(), Value::Str(f.stage.clone()));
                failure.insert("message".into(), Value::Str(f.message.clone()));
                meta.insert("outcome".into(), Value::Str("failed".into()));
                meta.insert("failure".into(), Value::Obj(failure));
            }
        }
        let meta_path = self.meta_path(&entry.design);
        let tmp = meta_path.with_extension("json.tmp");
        std::fs::write(&tmp, Value::Obj(meta).to_json()).map_err(|e| PersistError::io(&tmp, e))?;
        std::fs::rename(&tmp, &meta_path).map_err(|e| PersistError::io(&meta_path, e))
    }

    /// Names of all designs with a committed entry under this store's
    /// digest, in directory order (diagnostics only).
    pub fn committed(&self) -> Vec<String> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = dir
            .filter_map(|e| {
                let path = e.ok()?.path();
                if path.extension()? != "json" {
                    return None;
                }
                let text = std::fs::read_to_string(&path).ok()?;
                let v = json::parse(&text).ok()?;
                if v.get("digest")?.as_str()? != format!("{:016x}", self.digest) {
                    return None;
                }
                Some(v.get("design")?.as_str()?.to_string())
            })
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::error::Error;

    fn toy() -> CongestionDataset {
        let mut ds = CongestionDataset::new();
        for i in 0..20usize {
            let mut features = vec![0.0; FEATURE_COUNT];
            features[0] = i as f64;
            features[100] = 0.125 * i as f64;
            ds.push(
                Sample {
                    design: format!("d{}", i % 2),
                    func: FuncId(0),
                    op: OpId(i as u32),
                    line: i as u32 + 1,
                    replica: (i % 3 == 0).then_some(ReplicaTag {
                        group: 7,
                        index: i as u32,
                        total: 20,
                    }),
                    vertical: 1.5 * i as f64,
                    horizontal: 0.5 * i as f64,
                },
                &features,
            );
        }
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() -> Result<(), Box<dyn Error>> {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf)?;
        let back = read_csv(std::io::Cursor::new(buf))?;
        assert_eq!(back.len(), ds.len());
        for (i, (a, b)) in ds.samples.iter().zip(&back.samples).enumerate() {
            assert_eq!(a.design, b.design);
            assert_eq!(a.op, b.op);
            assert_eq!(a.line, b.line);
            assert_eq!(a.replica, b.replica);
            assert_eq!(ds.features_of(i), back.features_of(i));
            assert_eq!(a.vertical, b.vertical);
            assert_eq!(a.horizontal, b.horizontal);
        }
        Ok(())
    }

    #[test]
    fn header_has_meaningful_names() -> Result<(), Box<dyn Error>> {
        let mut buf = Vec::new();
        write_csv(&toy(), &mut buf)?;
        let text = String::from_utf8(buf)?;
        let header = text.lines().next().ok_or("no header line")?;
        assert!(header.contains("bitwidth"));
        assert!(header.contains("rdt_LUT_pred_per_dtcs_1hop"));
        assert!(header.ends_with("label_vertical,label_horizontal"));
        Ok(())
    }

    #[test]
    fn malformed_rows_rejected() -> Result<(), Box<dyn Error>> {
        let mut buf = Vec::new();
        write_csv(&toy(), &mut buf)?;
        let mut text = String::from_utf8(buf)?;
        text.push_str("short,row\n");
        let e = read_csv(std::io::Cursor::new(text)).unwrap_err();
        assert!(e.message.contains("columns"));
        Ok(())
    }

    #[test]
    fn wrong_header_rejected() {
        let e = read_csv(std::io::Cursor::new("a,b,c\n")).unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn file_roundtrip() -> Result<(), Box<dyn Error>> {
        let dir = std::env::temp_dir().join("congestion_core_persist_test.csv");
        save(&toy(), &dir)?;
        let back = load(&dir)?;
        assert_eq!(back.len(), 20);
        std::fs::remove_file(dir).ok();
        Ok(())
    }

    #[test]
    fn load_missing_file_is_a_typed_io_error() {
        let e = load("/definitely/not/here.csv").unwrap_err();
        assert!(matches!(e, PersistError::Io { .. }));
        assert!(e.to_string().contains("not/here.csv"));
    }

    /// Fresh checkpoint directory per test, removed on drop.
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p =
                std::env::temp_dir().join(format!("congestion_ckpt_{tag}_{}", std::process::id()));
            std::fs::remove_dir_all(&p).ok();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn checkpoint_roundtrips_success_and_failure() -> Result<(), Box<dyn Error>> {
        let tmp = TempDir::new("roundtrip");
        let store = CheckpointStore::open(&tmp.0, 0xfeed)?;
        let mut ok_data = toy();
        for s in &mut ok_data.samples {
            s.design = "good/design".to_string();
        }
        let ok_entry = CheckpointEntry {
            design: "good/design".to_string(),
            outcome: Ok(ok_data),
        };
        let failed_entry = CheckpointEntry {
            design: "bad design".to_string(),
            outcome: Err(RecordedFailure {
                kind: "panic".into(),
                stage: "par".into(),
                message: "router slipped on a banana peel".into(),
            }),
        };
        store.store(&ok_entry)?;
        store.store(&failed_entry)?;

        assert_eq!(store.lookup("good/design"), CheckpointLookup::Hit(ok_entry));
        assert_eq!(
            store.lookup("bad design"),
            CheckpointLookup::Hit(failed_entry)
        );
        assert_eq!(store.lookup("never ran"), CheckpointLookup::Miss);
        assert_eq!(
            store.committed(),
            vec!["bad design".to_string(), "good/design".to_string()]
        );
        Ok(())
    }

    #[test]
    fn digest_mismatch_is_a_miss_not_a_hit() -> Result<(), Box<dyn Error>> {
        let tmp = TempDir::new("digest");
        let old = CheckpointStore::open(&tmp.0, 1)?;
        old.store(&CheckpointEntry {
            design: "d".into(),
            outcome: Ok(toy()),
        })?;
        let new = CheckpointStore::open(&tmp.0, 2)?;
        assert_eq!(new.lookup("d"), CheckpointLookup::Miss);
        assert!(new.committed().is_empty());
        // The original configuration still sees its entry.
        assert!(matches!(old.lookup("d"), CheckpointLookup::Hit(_)));
        Ok(())
    }

    #[test]
    fn corrupt_entries_are_flagged_for_recomputation() -> Result<(), Box<dyn Error>> {
        let tmp = TempDir::new("corrupt");
        let store = CheckpointStore::open(&tmp.0, 9)?;
        store.store(&CheckpointEntry {
            design: "d".into(),
            outcome: Ok(toy()),
        })?;
        // Truncate the payload: meta commits 20 samples, csv now has none.
        let stem_csv = std::fs::read_dir(&tmp.0)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "csv"))
            .ok_or("no csv written")?;
        let text = std::fs::read_to_string(&stem_csv)?;
        let header = text.lines().next().ok_or("no header")?.to_string();
        std::fs::write(&stem_csv, format!("{header}\n"))?;
        match store.lookup("d") {
            CheckpointLookup::Corrupt(msg) => assert!(msg.contains("mismatch"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Garbage meta is also corrupt, not fatal.
        let meta = stem_csv.with_extension("json");
        std::fs::write(&meta, "{not json")?;
        assert!(matches!(store.lookup("d"), CheckpointLookup::Corrupt(_)));
        // Re-storing heals the entry.
        store.store(&CheckpointEntry {
            design: "d".into(),
            outcome: Ok(toy()),
        })?;
        assert!(matches!(store.lookup("d"), CheckpointLookup::Hit(_)));
        Ok(())
    }

    /// A sample with the given design name and one distinguishing value.
    fn tagged_sample(design: &str, v: f64) -> Sample {
        Sample {
            design: design.to_string(),
            func: FuncId(0),
            op: OpId(0),
            line: 1,
            replica: None,
            vertical: v,
            horizontal: 2.0 * v,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any design name — including hostile characters — and any
        /// outcome round-trips through store + lookup bit-identically.
        #[test]
        fn checkpoint_entry_roundtrip(
            name_seed in 0u64..u64::MAX,
            n_samples in 0usize..4,
            failed in 0u32..2,
            digest in 0u64..u64::MAX,
        ) {
            // No ',' or '\n': the CSV payload format cannot carry them in
            // a design name (pre-existing write_csv limitation).
            let raw: Vec<char> = "ab/λ .:#\\\"'|-_".chars().collect();
            let design: String = (0..6)
                .map(|i| raw[((name_seed >> (i * 8)) as usize) % raw.len()])
                .collect();
            let tmp = TempDir::new(&format!("prop{:x}", digest as u16));
            let store = CheckpointStore::open(&tmp.0, digest).unwrap();
            let outcome = if failed == 1 {
                Err(RecordedFailure {
                    kind: "injected".into(),
                    stage: "hls".into(),
                    message: design.clone(),
                })
            } else {
                let mut data = CongestionDataset::new();
                for i in 0..n_samples {
                    let v = i as f64 + 0.5;
                    data.push(tagged_sample(&design, v), &vec![v; FEATURE_COUNT]);
                }
                Ok(data)
            };
            let entry = CheckpointEntry { design: design.clone(), outcome };
            store.store(&entry).unwrap();
            prop_assert_eq!(store.lookup(&design), CheckpointLookup::Hit(entry));
        }
    }
}
