//! Interconnection features (18): fan-in/out, neighbor counts, and
//! max-wire shares, over the 1-hop and 2-hop neighborhoods.

use super::ExtractCtx;

/// Number of features in this category.
pub const COUNT: usize = 18;

pub(super) fn extract(ctx: &ExtractCtx<'_>, node: usize, out: &mut Vec<f64>) {
    let g = ctx.graph;

    // 1-hop.
    let fan_in = g.fan_in(node) as f64;
    let fan_out = g.fan_out(node) as f64;
    let n_pred = g.inc[node].len() as f64;
    let n_succ = g.out[node].len() as f64;
    let max_wire = g.inc[node]
        .iter()
        .chain(g.out[node].iter())
        .map(|&(_, w)| w)
        .max()
        .unwrap_or(0) as f64;
    out.extend_from_slice(&[
        fan_in,
        fan_out,
        fan_in + fan_out,
        n_pred,
        n_succ,
        n_pred + n_succ,
        max_wire,
        ratio(max_wire, fan_in),
        ratio(max_wire, fan_out),
    ]);

    // 2-hop: fan metrics accumulate over the 1-hop neighbors' own edges.
    let fan_in2 = fan_in + g.preds(node).map(|p| g.fan_in(p) as f64).sum::<f64>();
    let fan_out2 = fan_out + g.succs(node).map(|s| g.fan_out(s) as f64).sum::<f64>();
    let n_pred2 = ctx.preds2.row(node).len() as f64;
    let n_succ2 = ctx.succs2.row(node).len() as f64;
    let max_wire2 = {
        let mut m = max_wire;
        for &p in g
            .preds(node)
            .chain(g.succs(node))
            .collect::<Vec<_>>()
            .iter()
        {
            for &(_, w) in g.inc[p].iter().chain(g.out[p].iter()) {
                m = m.max(w as f64);
            }
        }
        m
    };
    out.extend_from_slice(&[
        fan_in2,
        fan_out2,
        fan_in2 + fan_out2,
        n_pred2,
        n_succ2,
        n_pred2 + n_succ2,
        max_wire2,
        ratio(max_wire2, fan_in2),
        ratio(max_wire2, fan_out2),
    ]);
}

/// SoA kernel: same 18 values written into a column slice, with the
/// pointless per-node `collect` of the `max_wire2` scan replaced by a
/// direct walk over the adjacency lists. Summation order matches
/// [`extract`] exactly so both kernels are bitwise-identical.
pub(super) fn extract_into(ctx: &ExtractCtx<'_>, node: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), COUNT);
    let g = ctx.graph;

    // 1-hop.
    let fan_in = g.fan_in(node) as f64;
    let fan_out = g.fan_out(node) as f64;
    let n_pred = g.inc[node].len() as f64;
    let n_succ = g.out[node].len() as f64;
    let max_wire = g.inc[node]
        .iter()
        .chain(g.out[node].iter())
        .map(|&(_, w)| w)
        .max()
        .unwrap_or(0) as f64;
    out[0] = fan_in;
    out[1] = fan_out;
    out[2] = fan_in + fan_out;
    out[3] = n_pred;
    out[4] = n_succ;
    out[5] = n_pred + n_succ;
    out[6] = max_wire;
    out[7] = ratio(max_wire, fan_in);
    out[8] = ratio(max_wire, fan_out);

    // 2-hop.
    let fan_in2 = fan_in + g.preds(node).map(|p| g.fan_in(p) as f64).sum::<f64>();
    let fan_out2 = fan_out + g.succs(node).map(|s| g.fan_out(s) as f64).sum::<f64>();
    let n_pred2 = ctx.preds2.row(node).len() as f64;
    let n_succ2 = ctx.succs2.row(node).len() as f64;
    let mut max_wire2 = max_wire;
    for p in g.preds(node).chain(g.succs(node)) {
        for &(_, w) in g.inc[p].iter().chain(g.out[p].iter()) {
            max_wire2 = max_wire2.max(w as f64);
        }
    }
    out[9] = fan_in2;
    out[10] = fan_out2;
    out[11] = fan_in2 + fan_out2;
    out[12] = n_pred2;
    out[13] = n_succ2;
    out[14] = n_pred2 + n_succ2;
    out[15] = max_wire2;
    out[16] = ratio(max_wire2, fan_in2);
    out[17] = ratio(max_wire2, fan_out2);
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for hop in ["1hop", "2hop"] {
        for base in [
            "fan_in",
            "fan_out",
            "fan_total",
            "n_pred",
            "n_succ",
            "n_neighbors",
            "max_wire",
            "max_wire_per_fan_in",
            "max_wire_per_fan_out",
        ] {
            names.push(format!("ic_{base}_{hop}"));
        }
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(
            COUNT,
            super::super::FeatureCategory::Interconnection.range().len()
        );
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }

    #[test]
    fn ratio_guards_division() {
        assert_eq!(ratio(5.0, 0.0), 0.0);
        assert_eq!(ratio(5.0, 2.0), 2.5);
    }
}
