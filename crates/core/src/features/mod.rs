//! The 302 features in 7 categories (paper Table II).
//!
//! Layout (fixed order, asserted by tests):
//!
//! | slice | category | count |
//! |---|---|---|
//! | `0` | Bitwidth | 1 |
//! | `1..19` | Interconnection | 18 |
//! | `19..119` | Resource (25 × 4 types) | 100 |
//! | `119..121` | Timing | 2 |
//! | `121..193` | #Resource/ΔTcs (18 × 4 types) | 72 |
//! | `193..276` | Operator type (41 one-hot + 41 histogram + 1) | 83 |
//! | `276..302` | Global information | 26 |

mod global;
mod interconnection;
mod optype;
mod resource;
mod resource_dtcs;

use crate::graph::{Csr, DepGraph};
use fpga_fabric::Device;
use hls_ir::Function;
use hls_synth::{CharLib, HlsReport, Resources, Schedule, SynthesizedDesign};

/// Total number of features (the paper's 302).
pub const FEATURE_COUNT: usize = 302;

/// Which feature-extraction kernel fills the rows.
///
/// Both kernels produce bitwise-identical feature vectors (pinned by the
/// differential suite in `tests/extract_differential.rs`); they differ only
/// in how the work is laid out. The same new-kernel/reference-kernel idiom
/// as the router (`MazeKernel`), GBRT (`GbrtKernel`), and placer
/// (`PlaceKernel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtractKernel {
    /// Batched structure-of-arrays path: `extract_into` writes straight
    /// into a row of the dataset's flat feature matrix, reading 2-hop
    /// neighborhoods from CSR slices — zero allocations per node.
    #[default]
    Soa,
    /// The original per-node path allocating one `Vec<f64>` per sample,
    /// kept as the differential-test reference.
    Reference,
}

impl ExtractKernel {
    /// Parse a CLI name (`soa` | `reference`).
    pub fn parse(s: &str) -> Option<ExtractKernel> {
        match s {
            "soa" => Some(ExtractKernel::Soa),
            "reference" => Some(ExtractKernel::Reference),
            _ => None,
        }
    }

    /// Display name (also the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            ExtractKernel::Soa => "soa",
            ExtractKernel::Reference => "reference",
        }
    }
}

/// Feature categories (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureCategory {
    /// Bitwidth of the operation.
    Bitwidth,
    /// Fan-in/out, neighbor counts, max-wire shares.
    Interconnection,
    /// Resource usage and utilization ratios (per resource type).
    Resource,
    /// Delay and latency.
    Timing,
    /// Resource quantities divided by control-state distance.
    ResourcePerDtcs,
    /// Operation kind one-hot and neighbor kind histogram.
    OperatorType,
    /// Function/design-level statistics.
    Global,
}

impl FeatureCategory {
    /// All categories in layout order.
    pub const ALL: [FeatureCategory; 7] = [
        FeatureCategory::Bitwidth,
        FeatureCategory::Interconnection,
        FeatureCategory::Resource,
        FeatureCategory::Timing,
        FeatureCategory::ResourcePerDtcs,
        FeatureCategory::OperatorType,
        FeatureCategory::Global,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureCategory::Bitwidth => "Bitwidth",
            FeatureCategory::Interconnection => "Interconnection",
            FeatureCategory::Resource => "Resource",
            FeatureCategory::Timing => "Timing",
            FeatureCategory::ResourcePerDtcs => "#Resource/dTcs",
            FeatureCategory::OperatorType => "Operator Type",
            FeatureCategory::Global => "Global Information",
        }
    }

    /// The index range of this category in the feature vector.
    pub fn range(&self) -> std::ops::Range<usize> {
        match self {
            FeatureCategory::Bitwidth => 0..1,
            FeatureCategory::Interconnection => 1..19,
            FeatureCategory::Resource => 19..119,
            FeatureCategory::Timing => 119..121,
            FeatureCategory::ResourcePerDtcs => 121..193,
            FeatureCategory::OperatorType => 193..276,
            FeatureCategory::Global => 276..302,
        }
    }

    /// The category owning feature index `i`.
    ///
    /// # Panics
    /// Panics if `i >= FEATURE_COUNT`.
    pub fn of_index(i: usize) -> FeatureCategory {
        for c in FeatureCategory::ALL {
            if c.range().contains(&i) {
                return c;
            }
        }
        panic!("feature index {i} out of range");
    }
}

/// Everything needed to extract features for the nodes of one function.
pub struct ExtractCtx<'a> {
    /// The dependency graph.
    pub graph: &'a DepGraph,
    /// The function.
    pub func: &'a Function,
    /// Its schedule.
    pub sched: &'a Schedule,
    /// Characterization library.
    pub lib: &'a CharLib,
    /// HLS report (Fop + Ftop global features).
    pub report: &'a HlsReport,
    /// This function's id.
    pub func_id: hls_ir::FuncId,
    /// Device totals for utilization ratios.
    pub device_totals: Resources,
    /// Per-node resources (unit counted once for merged nodes).
    pub node_res: Vec<Resources>,
    /// Per-node (delay ns, latency cycles).
    pub node_timing: Vec<(f64, f64)>,
    /// Per-node (start, end) control states.
    pub node_states: Vec<(u32, u32)>,
    /// Per-node 2-hop predecessor sets (deduplicated, sorted), one CSR row
    /// per node.
    pub preds2: Csr,
    /// Two-hop successors, same layout.
    pub succs2: Csr,
    /// The 26 global features — node-independent, computed once per
    /// function and copied into every row.
    pub global_row: Vec<f64>,
}

impl<'a> ExtractCtx<'a> {
    /// Precompute per-node quantities for a function of a synthesized design.
    pub fn new(
        graph: &'a DepGraph,
        design: &'a SynthesizedDesign,
        func_id: hls_ir::FuncId,
        device: &Device,
    ) -> ExtractCtx<'a> {
        let func = design.module.function(func_id);
        let sched = &design.schedules[&func_id];
        let lib = &design.lib;
        let n = graph.len();

        let mut node_res = vec![Resources::ZERO; n];
        let mut node_timing = vec![(0.0, 0.0); n];
        let mut node_states = vec![(0u32, 0u32); n];
        for (i, node) in graph.nodes.iter().enumerate() {
            if node.is_port {
                continue;
            }
            // Shared units count their hardware once (first op).
            let first = node.ops[0];
            let cost = lib.cost_of_op(func, func.op(first));
            node_res[i] = cost.resources;
            node_timing[i] = (cost.delay_ns, cost.latency as f64);
            let start = node
                .ops
                .iter()
                .map(|o| sched.start[o.index()])
                .min()
                .unwrap_or(0);
            let end = node
                .ops
                .iter()
                .map(|o| sched.end[o.index()])
                .max()
                .unwrap_or(0);
            node_states[i] = (start, end);
        }

        // 2-hop neighbor sets, flattened into CSR. One scratch vector is
        // reused across all nodes instead of one allocation per node.
        let mut preds2 = Csr::with_capacity(n, 0);
        let mut succs2 = Csr::with_capacity(n, 0);
        let mut scratch: Vec<usize> = Vec::new();
        for i in 0..n {
            scratch.clear();
            scratch.extend(graph.preds(i));
            for j in graph.preds(i) {
                scratch.extend(graph.preds(j));
            }
            scratch.sort_unstable();
            scratch.dedup();
            scratch.retain(|&x| x != i);
            preds2.push_row(&scratch);
            scratch.clear();
            scratch.extend(graph.succs(i));
            for j in graph.succs(i) {
                scratch.extend(graph.succs(j));
            }
            scratch.sort_unstable();
            scratch.dedup();
            scratch.retain(|&x| x != i);
            succs2.push_row(&scratch);
        }

        let mut global_row = Vec::with_capacity(global::COUNT);
        global::compute(&design.report, func_id, &mut global_row);

        let totals = device.totals();
        ExtractCtx {
            graph,
            func,
            sched,
            lib,
            report: &design.report,
            func_id,
            device_totals: Resources::new(totals.luts, totals.ffs, totals.dsps, totals.brams),
            node_res,
            node_timing,
            node_states,
            preds2,
            succs2,
            global_row,
        }
    }

    /// Control-state distance between producer node `p` and consumer `s`
    /// (the paper's ΔTcs, at least 1).
    pub fn delta_tcs(&self, p: usize, s: usize) -> f64 {
        let end_p = self.node_states[p].1;
        let start_s = self.node_states[s].0;
        (start_s.abs_diff(end_p)).max(1) as f64
    }

    /// Extract the full 302-feature vector for `node`.
    pub fn extract(&self, node: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(FEATURE_COUNT);
        // Bitwidth (1).
        v.push(self.graph.nodes[node].bits as f64);
        let mark = v.len();
        interconnection::extract(self, node, &mut v);
        debug_assert_eq!(v.len() - mark, interconnection::COUNT);
        let mark = v.len();
        resource::extract(self, node, &mut v);
        debug_assert_eq!(v.len() - mark, resource::COUNT);
        // Timing (2).
        let (delay, lat) = self.node_timing[node];
        v.push(delay);
        v.push(lat);
        let mark = v.len();
        resource_dtcs::extract(self, node, &mut v);
        debug_assert_eq!(v.len() - mark, resource_dtcs::COUNT);
        let mark = v.len();
        optype::extract(self, node, &mut v);
        debug_assert_eq!(v.len() - mark, optype::COUNT);
        let mark = v.len();
        global::extract(self, node, &mut v);
        debug_assert_eq!(v.len() - mark, global::COUNT);
        debug_assert_eq!(v.len(), FEATURE_COUNT);
        v
    }

    /// Extract the full 302-feature vector for `node` directly into `row`
    /// — the SoA kernel. Bitwise-identical to [`ExtractCtx::extract`] but
    /// allocation-free: the category extractors write into fixed column
    /// slices of the row, 2-hop neighborhoods come from CSR slices, and
    /// the node-independent global block is a straight copy of the
    /// precomputed `global_row`.
    ///
    /// # Panics
    /// Panics if `row.len() != FEATURE_COUNT`.
    pub fn extract_into(&self, node: usize, row: &mut [f64]) {
        assert_eq!(row.len(), FEATURE_COUNT, "row length mismatch");
        use FeatureCategory as C;
        row.fill(0.0);
        row[0] = self.graph.nodes[node].bits as f64;
        interconnection::extract_into(self, node, &mut row[C::Interconnection.range()]);
        resource::extract_into(self, node, &mut row[C::Resource.range()]);
        let (delay, lat) = self.node_timing[node];
        let t = C::Timing.range().start;
        row[t] = delay;
        row[t + 1] = lat;
        resource_dtcs::extract_into(self, node, &mut row[C::ResourcePerDtcs.range()]);
        optype::extract_into(self, node, &mut row[C::OperatorType.range()]);
        row[C::Global.range()].copy_from_slice(&self.global_row);
    }
}

/// Human-readable names of all 302 features, aligned with the vector layout.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(FEATURE_COUNT);
    names.push("bitwidth".to_string());
    interconnection::push_names(&mut names);
    resource::push_names(&mut names);
    names.push("delay_ns".into());
    names.push("latency_cycles".into());
    resource_dtcs::push_names(&mut names);
    optype::push_names(&mut names);
    global::push_names(&mut names);
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_adds_to_302() {
        let mut total = 0;
        let mut cursor = 0;
        for c in FeatureCategory::ALL {
            let r = c.range();
            assert_eq!(r.start, cursor, "category {c:?} misaligned");
            cursor = r.end;
            total += r.len();
        }
        assert_eq!(total, FEATURE_COUNT);
        assert_eq!(FEATURE_COUNT, 302);
    }

    #[test]
    fn category_counts_match_design_doc() {
        use FeatureCategory as C;
        assert_eq!(C::Bitwidth.range().len(), 1);
        assert_eq!(C::Interconnection.range().len(), interconnection::COUNT);
        assert_eq!(C::Resource.range().len(), resource::COUNT);
        assert_eq!(C::Timing.range().len(), 2);
        assert_eq!(C::ResourcePerDtcs.range().len(), resource_dtcs::COUNT);
        assert_eq!(C::OperatorType.range().len(), optype::COUNT);
        assert_eq!(C::Global.range().len(), global::COUNT);
        assert_eq!(resource::PER_TYPE, 25);
        assert_eq!(resource_dtcs::PER_TYPE, 18);
    }

    #[test]
    fn of_index_roundtrips() {
        for i in 0..FEATURE_COUNT {
            let c = FeatureCategory::of_index(i);
            assert!(c.range().contains(&i));
        }
    }

    #[test]
    fn names_cover_every_feature() {
        let names = feature_names();
        assert_eq!(names.len(), FEATURE_COUNT);
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), FEATURE_COUNT, "names must be unique");
    }
}
