//! Operator-type features (83): a one-hot encoding of the node's own kind
//! (41), the histogram of kinds among its 1-hop neighbors (41), and the
//! number of distinct neighbor kinds (1).

use super::ExtractCtx;
use hls_ir::OpKind;

/// Number of features in this category.
pub const COUNT: usize = 2 * OpKind::COUNT + 1;

pub(super) fn extract(ctx: &ExtractCtx<'_>, node: usize, out: &mut Vec<f64>) {
    let g = ctx.graph;
    // One-hot of the node's kind.
    let own = g.nodes[node].kind.index();
    for k in 0..OpKind::COUNT {
        out.push(if k == own { 1.0 } else { 0.0 });
    }
    // Neighbor kind histogram.
    let mut hist = [0.0f64; OpKind::COUNT];
    for n in g.preds(node).chain(g.succs(node)) {
        hist[g.nodes[n].kind.index()] += 1.0;
    }
    out.extend_from_slice(&hist);
    // Distinct neighbor kinds.
    out.push(hist.iter().filter(|&&c| c > 0.0).count() as f64);
}

/// SoA kernel: the one-hot and histogram blocks are scattered straight
/// into the (pre-zeroed) column slice — no stack histogram copy.
pub(super) fn extract_into(ctx: &ExtractCtx<'_>, node: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), COUNT);
    let g = ctx.graph;
    out[g.nodes[node].kind.index()] = 1.0;
    let hist = &mut out[OpKind::COUNT..2 * OpKind::COUNT];
    for n in g.preds(node).chain(g.succs(node)) {
        hist[g.nodes[n].kind.index()] += 1.0;
    }
    out[2 * OpKind::COUNT] = out[OpKind::COUNT..2 * OpKind::COUNT]
        .iter()
        .filter(|&&c| c > 0.0)
        .count() as f64;
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for k in OpKind::ALL {
        names.push(format!("op_is_{k}"));
    }
    for k in OpKind::ALL {
        names.push(format!("op_neighbors_{k}"));
    }
    names.push("op_distinct_neighbor_kinds".into());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(
            COUNT,
            super::super::FeatureCategory::OperatorType.range().len()
        );
        assert_eq!(COUNT, 83);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }
}
