//! Global-information features (26): top-function and own-function resource
//! usage, clock settings, memory statistics and multiplexer statistics from
//! the HLS report (paper Table II, last row).

use super::ExtractCtx;
use hls_synth::Resources;

/// Number of features in this category.
pub const COUNT: usize = 26;

pub(super) fn extract(ctx: &ExtractCtx<'_>, _node: usize, out: &mut Vec<f64>) {
    compute(ctx.report, ctx.func_id, out);
}

/// The 26 global values for one function. Node-independent: the SoA kernel
/// calls this once per function ([`ExtractCtx::new`] caches the row) and
/// copies it into every sample.
pub(super) fn compute(report: &hls_synth::HlsReport, func_id: hls_ir::FuncId, out: &mut Vec<f64>) {
    let top = &report.functions[&report.top];
    let fop = &report.functions[&func_id];

    // Ftop resources (4).
    for t in 0..Resources::KINDS {
        out.push(top.resources.get(t) as f64);
    }
    // Fop resources (4) and share of Ftop (4).
    for t in 0..Resources::KINDS {
        out.push(fop.resources.get(t) as f64);
    }
    for t in 0..Resources::KINDS {
        let denom = top.resources.get(t) as f64;
        out.push(if denom < 1e-12 {
            0.0
        } else {
            fop.resources.get(t) as f64 / denom
        });
    }
    // Clocks: target / estimated / uncertainty for Ftop and Fop (6).
    out.push(report.clock_target_ns);
    out.push(top.estimated_clock_ns);
    out.push(report.clock_uncertainty_ns);
    out.push(report.clock_target_ns);
    out.push(fop.estimated_clock_ns);
    out.push(report.clock_uncertainty_ns);
    // Memory stats of Fop (4).
    out.push(fop.memory.words as f64);
    out.push(fop.memory.banks as f64);
    out.push(fop.memory.bits as f64);
    out.push(fop.memory.primitives as f64);
    // Mux stats of Fop (4).
    out.push(fop.mux.count as f64);
    out.push(fop.mux.luts as f64);
    out.push(fop.mux.input_size as f64);
    out.push(fop.mux.bits as f64);
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for t in Resources::NAMES {
        names.push(format!("glob_top_{t}"));
    }
    for t in Resources::NAMES {
        names.push(format!("glob_fn_{t}"));
    }
    for t in Resources::NAMES {
        names.push(format!("glob_fn_share_{t}"));
    }
    for scope in ["top", "fn"] {
        for c in ["clock_target", "clock_est", "clock_unc"] {
            names.push(format!("glob_{scope}_{c}"));
        }
    }
    for m in ["mem_words", "mem_banks", "mem_bits", "mem_primitives"] {
        names.push(format!("glob_{m}"));
    }
    for m in ["mux_count", "mux_luts", "mux_inputs", "mux_bits"] {
        names.push(format!("glob_{m}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(COUNT, super::super::FeatureCategory::Global.range().len());
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }
}
