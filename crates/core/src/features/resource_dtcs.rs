//! #Resource/ΔTcs features (72 = 18 × 4 types): neighbor resource
//! quantities divided by the control-state distance to the node (paper
//! §III-B3) — "the combined effects of resource usage/utilization ratios and
//! timing information".

use super::ExtractCtx;
use hls_synth::Resources;

/// Number of features in this category.
pub const COUNT: usize = 72;

/// Features per resource type.
pub const PER_TYPE: usize = 18;

pub(super) fn extract(ctx: &ExtractCtx<'_>, node: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(COUNT, Resources::KINDS * PER_TYPE);
    let fop_res = &ctx.report.functions[&ctx.func_id].resources;
    for t in 0..Resources::KINDS {
        let dev = ctx.device_totals.get(t) as f64;
        let fnr = fop_res.get(t) as f64;

        // 1-hop (9).
        let preds: Vec<usize> = ctx.graph.preds(node).collect();
        let succs: Vec<usize> = ctx.graph.succs(node).collect();
        push_scaled(ctx, node, t, out, &preds, &succs, dev, fnr);
        // 2-hop (9).
        push_scaled(
            ctx,
            node,
            t,
            out,
            &ctx.preds2[node],
            &ctx.succs2[node],
            dev,
            fnr,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn push_scaled(
    ctx: &ExtractCtx<'_>,
    node: usize,
    t: usize,
    out: &mut Vec<f64>,
    preds: &[usize],
    succs: &[usize],
    dev: f64,
    fnr: f64,
) {
    // Σ usage(p) / ΔTcs(p, node) over predecessors (and symmetrically for
    // successors).
    let pred: f64 = preds
        .iter()
        .map(|&p| ctx.node_res[p].get(t) as f64 / ctx.delta_tcs(p, node))
        .sum();
    let succ: f64 = succs
        .iter()
        .map(|&s| ctx.node_res[s].get(t) as f64 / ctx.delta_tcs(node, s))
        .sum();
    let both = pred + succ;
    out.push(pred);
    out.push(succ);
    out.push(both);
    out.push(ratio(pred, dev));
    out.push(ratio(succ, dev));
    out.push(ratio(both, dev));
    out.push(ratio(pred, fnr));
    out.push(ratio(succ, fnr));
    out.push(ratio(both, fnr));
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for t in Resources::NAMES {
        for hop in ["1hop", "2hop"] {
            for base in [
                "pred_per_dtcs",
                "succ_per_dtcs",
                "both_per_dtcs",
                "pred_util_dev_per_dtcs",
                "succ_util_dev_per_dtcs",
                "both_util_dev_per_dtcs",
                "pred_util_fn_per_dtcs",
                "succ_util_fn_per_dtcs",
                "both_util_fn_per_dtcs",
            ] {
                names.push(format!("rdt_{t}_{base}_{hop}"));
            }
        }
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(
            COUNT,
            super::super::FeatureCategory::ResourcePerDtcs.range().len()
        );
        assert_eq!(PER_TYPE * Resources::KINDS, COUNT);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }
}
