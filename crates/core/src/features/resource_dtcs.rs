//! #Resource/ΔTcs features (72 = 18 × 4 types): neighbor resource
//! quantities divided by the control-state distance to the node (paper
//! §III-B3) — "the combined effects of resource usage/utilization ratios and
//! timing information".

use super::ExtractCtx;
use hls_synth::Resources;

/// Number of features in this category.
pub const COUNT: usize = 72;

/// Features per resource type.
pub const PER_TYPE: usize = 18;

pub(super) fn extract(ctx: &ExtractCtx<'_>, node: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(COUNT, Resources::KINDS * PER_TYPE);
    let fop_res = &ctx.report.functions[&ctx.func_id].resources;
    for t in 0..Resources::KINDS {
        let dev = ctx.device_totals.get(t) as f64;
        let fnr = fop_res.get(t) as f64;

        // 1-hop (9).
        let preds: Vec<usize> = ctx.graph.preds(node).collect();
        let succs: Vec<usize> = ctx.graph.succs(node).collect();
        push_scaled(ctx, node, t, out, &preds, &succs, dev, fnr);
        // 2-hop (9).
        push_scaled(
            ctx,
            node,
            t,
            out,
            ctx.preds2.row(node),
            ctx.succs2.row(node),
            dev,
            fnr,
        );
    }
}

/// Per-type ΔTcs-scaled sums accumulated in one pass over the neighbor
/// lists. The per-element arithmetic (`usage / ΔTcs`, summed in neighbor
/// order per type) matches [`push_scaled`] exactly, so both kernels agree
/// bitwise; the control-state distance is computed once per neighbor
/// instead of once per neighbor per type.
fn scaled_sums(
    ctx: &ExtractCtx<'_>,
    node: usize,
    preds: &[usize],
    succs: &[usize],
) -> ([f64; Resources::KINDS], [f64; Resources::KINDS]) {
    let mut pred = [0.0; Resources::KINDS];
    let mut succ = [0.0; Resources::KINDS];
    for &p in preds {
        let d = ctx.delta_tcs(p, node);
        let r = &ctx.node_res[p];
        for (t, acc) in pred.iter_mut().enumerate() {
            *acc += r.get(t) as f64 / d;
        }
    }
    for &s in succs {
        let d = ctx.delta_tcs(node, s);
        let r = &ctx.node_res[s];
        for (t, acc) in succ.iter_mut().enumerate() {
            *acc += r.get(t) as f64 / d;
        }
    }
    (pred, succ)
}

/// SoA kernel: the same 72 values written into a column slice from
/// single-pass accumulators.
pub(super) fn extract_into(ctx: &ExtractCtx<'_>, node: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), COUNT);
    let fop_res = &ctx.report.functions[&ctx.func_id].resources;
    let g = ctx.graph;
    let mut pred1 = [0.0; Resources::KINDS];
    let mut succ1 = [0.0; Resources::KINDS];
    for &(p, _) in &g.inc[node] {
        let d = ctx.delta_tcs(p, node);
        let r = &ctx.node_res[p];
        for (t, acc) in pred1.iter_mut().enumerate() {
            *acc += r.get(t) as f64 / d;
        }
    }
    for &(s, _) in &g.out[node] {
        let d = ctx.delta_tcs(node, s);
        let r = &ctx.node_res[s];
        for (t, acc) in succ1.iter_mut().enumerate() {
            *acc += r.get(t) as f64 / d;
        }
    }
    let (pred2, succ2) = scaled_sums(ctx, node, ctx.preds2.row(node), ctx.succs2.row(node));
    for t in 0..Resources::KINDS {
        let dev = ctx.device_totals.get(t) as f64;
        let fnr = fop_res.get(t) as f64;
        let base = t * PER_TYPE;
        write_scaled(&mut out[base..base + 9], pred1[t], succ1[t], dev, fnr);
        write_scaled(&mut out[base + 9..base + 18], pred2[t], succ2[t], dev, fnr);
    }
}

/// The 9 scaled features of [`push_scaled`], written from accumulated sums.
fn write_scaled(out: &mut [f64], pred: f64, succ: f64, dev: f64, fnr: f64) {
    let both = pred + succ;
    out[0] = pred;
    out[1] = succ;
    out[2] = both;
    out[3] = ratio(pred, dev);
    out[4] = ratio(succ, dev);
    out[5] = ratio(both, dev);
    out[6] = ratio(pred, fnr);
    out[7] = ratio(succ, fnr);
    out[8] = ratio(both, fnr);
}

#[allow(clippy::too_many_arguments)]
fn push_scaled(
    ctx: &ExtractCtx<'_>,
    node: usize,
    t: usize,
    out: &mut Vec<f64>,
    preds: &[usize],
    succs: &[usize],
    dev: f64,
    fnr: f64,
) {
    // Σ usage(p) / ΔTcs(p, node) over predecessors (and symmetrically for
    // successors).
    // fold(0.0) rather than sum(): std's f64 sum identity is -0.0, which
    // would serialize an empty neighborhood as "-0" in the CSV.
    let pred: f64 = preds
        .iter()
        .map(|&p| ctx.node_res[p].get(t) as f64 / ctx.delta_tcs(p, node))
        .fold(0.0, |a, b| a + b);
    let succ: f64 = succs
        .iter()
        .map(|&s| ctx.node_res[s].get(t) as f64 / ctx.delta_tcs(node, s))
        .fold(0.0, |a, b| a + b);
    let both = pred + succ;
    out.push(pred);
    out.push(succ);
    out.push(both);
    out.push(ratio(pred, dev));
    out.push(ratio(succ, dev));
    out.push(ratio(both, dev));
    out.push(ratio(pred, fnr));
    out.push(ratio(succ, fnr));
    out.push(ratio(both, fnr));
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for t in Resources::NAMES {
        for hop in ["1hop", "2hop"] {
            for base in [
                "pred_per_dtcs",
                "succ_per_dtcs",
                "both_per_dtcs",
                "pred_util_dev_per_dtcs",
                "succ_util_dev_per_dtcs",
                "both_util_dev_per_dtcs",
                "pred_util_fn_per_dtcs",
                "succ_util_fn_per_dtcs",
                "both_util_fn_per_dtcs",
            ] {
                names.push(format!("rdt_{t}_{base}_{hop}"));
            }
        }
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(
            COUNT,
            super::super::FeatureCategory::ResourcePerDtcs.range().len()
        );
        assert_eq!(PER_TYPE * Resources::KINDS, COUNT);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }
}
