//! Resource features (100 = 25 × 4 types): usage and utilization ratios of
//! the node itself and its 1-hop/2-hop neighborhoods, per resource type
//! (LUT, FF, DSP, BRAM).

use super::ExtractCtx;
use hls_synth::Resources;

/// Number of features in this category.
pub const COUNT: usize = 100;

/// Features per resource type.
pub const PER_TYPE: usize = 25;

pub(super) fn extract(ctx: &ExtractCtx<'_>, node: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(COUNT, Resources::KINDS * PER_TYPE);
    let fop_res = &ctx.report.functions[&ctx.func_id].resources;
    for t in 0..Resources::KINDS {
        let dev = ctx.device_totals.get(t) as f64;
        let fnr = fop_res.get(t) as f64;
        let usage = |n: usize| ctx.node_res[n].get(t) as f64;

        let own = usage(node);
        // Self (3).
        out.push(own);
        out.push(ratio(own, dev));
        out.push(ratio(own, fnr));

        // 1-hop (11).
        let preds: Vec<usize> = ctx.graph.preds(node).collect();
        let succs: Vec<usize> = ctx.graph.succs(node).collect();
        push_neighborhood(out, &preds, &succs, &usage, dev, fnr);

        // 2-hop (11).
        push_neighborhood(out, &ctx.preds2[node], &ctx.succs2[node], &usage, dev, fnr);
    }
}

/// The 11 neighborhood features: pred/succ/both usage sums, their
/// device-utilization and function-utilization ratios, and the max-usage
/// neighbor with its share.
fn push_neighborhood(
    out: &mut Vec<f64>,
    preds: &[usize],
    succs: &[usize],
    usage: &impl Fn(usize) -> f64,
    dev: f64,
    fnr: f64,
) {
    let pred_sum: f64 = preds.iter().map(|&p| usage(p)).sum();
    let succ_sum: f64 = succs.iter().map(|&s| usage(s)).sum();
    let both = pred_sum + succ_sum;
    out.push(pred_sum);
    out.push(succ_sum);
    out.push(both);
    out.push(ratio(pred_sum, dev));
    out.push(ratio(succ_sum, dev));
    out.push(ratio(both, dev));
    out.push(ratio(pred_sum, fnr));
    out.push(ratio(succ_sum, fnr));
    out.push(ratio(both, fnr));
    let max = preds
        .iter()
        .chain(succs.iter())
        .map(|&n| usage(n))
        .fold(0.0f64, f64::max);
    out.push(max);
    out.push(ratio(max, both));
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for t in Resources::NAMES {
        names.push(format!("res_{t}_usage"));
        names.push(format!("res_{t}_util_dev"));
        names.push(format!("res_{t}_util_fn"));
        for hop in ["1hop", "2hop"] {
            for base in [
                "pred_sum",
                "succ_sum",
                "both_sum",
                "pred_util_dev",
                "succ_util_dev",
                "both_util_dev",
                "pred_util_fn",
                "succ_util_fn",
                "both_util_fn",
                "max_neighbor",
                "max_neighbor_share",
            ] {
                names.push(format!("res_{t}_{base}_{hop}"));
            }
        }
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(COUNT, super::super::FeatureCategory::Resource.range().len());
        assert_eq!(PER_TYPE * Resources::KINDS, COUNT);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }
}
