//! Resource features (100 = 25 × 4 types): usage and utilization ratios of
//! the node itself and its 1-hop/2-hop neighborhoods, per resource type
//! (LUT, FF, DSP, BRAM).

use super::ExtractCtx;
use hls_synth::Resources;

/// Number of features in this category.
pub const COUNT: usize = 100;

/// Features per resource type.
pub const PER_TYPE: usize = 25;

pub(super) fn extract(ctx: &ExtractCtx<'_>, node: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(COUNT, Resources::KINDS * PER_TYPE);
    let fop_res = &ctx.report.functions[&ctx.func_id].resources;
    for t in 0..Resources::KINDS {
        let dev = ctx.device_totals.get(t) as f64;
        let fnr = fop_res.get(t) as f64;
        let usage = |n: usize| ctx.node_res[n].get(t) as f64;

        let own = usage(node);
        // Self (3).
        out.push(own);
        out.push(ratio(own, dev));
        out.push(ratio(own, fnr));

        // 1-hop (11).
        let preds: Vec<usize> = ctx.graph.preds(node).collect();
        let succs: Vec<usize> = ctx.graph.succs(node).collect();
        push_neighborhood(out, &preds, &succs, &usage, dev, fnr);

        // 2-hop (11).
        push_neighborhood(
            out,
            ctx.preds2.row(node),
            ctx.succs2.row(node),
            &usage,
            dev,
            fnr,
        );
    }
}

/// Per-type neighborhood sums/maxes accumulated in one pass over the
/// neighbor lists (instead of one pass per resource type). Each type keeps
/// its own accumulator updated in neighbor order, so the per-type results
/// are bitwise-identical to the reference kernel's per-type passes.
#[derive(Clone, Copy)]
struct Acc {
    pred: [f64; Resources::KINDS],
    succ: [f64; Resources::KINDS],
    max: [f64; Resources::KINDS],
}

impl Acc {
    fn new(ctx: &ExtractCtx<'_>, preds: &[usize], succs: &[usize]) -> Acc {
        let mut a = Acc {
            pred: [0.0; Resources::KINDS],
            succ: [0.0; Resources::KINDS],
            max: [0.0; Resources::KINDS],
        };
        // Preds before succs: the reference `fold` chains them in that
        // order, so the max sequence must too.
        for &p in preds {
            let r = &ctx.node_res[p];
            for t in 0..Resources::KINDS {
                let u = r.get(t) as f64;
                a.pred[t] += u;
                a.max[t] = a.max[t].max(u);
            }
        }
        for &s in succs {
            let r = &ctx.node_res[s];
            for t in 0..Resources::KINDS {
                let u = r.get(t) as f64;
                a.succ[t] += u;
                a.max[t] = a.max[t].max(u);
            }
        }
        a
    }
}

/// SoA kernel: one pass over each neighborhood fills all four types'
/// accumulators, then the 25 per-type values are written into the column
/// slice — no per-node `collect`, no `Vec` growth.
pub(super) fn extract_into(ctx: &ExtractCtx<'_>, node: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), COUNT);
    let fop_res = &ctx.report.functions[&ctx.func_id].resources;
    let g = ctx.graph;
    let hop1 = {
        let mut a = Acc {
            pred: [0.0; Resources::KINDS],
            succ: [0.0; Resources::KINDS],
            max: [0.0; Resources::KINDS],
        };
        for &(p, _) in &g.inc[node] {
            let r = &ctx.node_res[p];
            for t in 0..Resources::KINDS {
                let u = r.get(t) as f64;
                a.pred[t] += u;
                a.max[t] = a.max[t].max(u);
            }
        }
        for &(s, _) in &g.out[node] {
            let r = &ctx.node_res[s];
            for t in 0..Resources::KINDS {
                let u = r.get(t) as f64;
                a.succ[t] += u;
                a.max[t] = a.max[t].max(u);
            }
        }
        a
    };
    let hop2 = Acc::new(ctx, ctx.preds2.row(node), ctx.succs2.row(node));
    for t in 0..Resources::KINDS {
        let dev = ctx.device_totals.get(t) as f64;
        let fnr = fop_res.get(t) as f64;
        let own = ctx.node_res[node].get(t) as f64;
        let base = t * PER_TYPE;
        out[base] = own;
        out[base + 1] = ratio(own, dev);
        out[base + 2] = ratio(own, fnr);
        write_neighborhood(&mut out[base + 3..base + 14], &hop1, t, dev, fnr);
        write_neighborhood(&mut out[base + 14..base + 25], &hop2, t, dev, fnr);
    }
}

/// The 11 neighborhood features of [`push_neighborhood`], written from the
/// accumulated sums for one resource type.
fn write_neighborhood(out: &mut [f64], a: &Acc, t: usize, dev: f64, fnr: f64) {
    let (pred_sum, succ_sum, max) = (a.pred[t], a.succ[t], a.max[t]);
    let both = pred_sum + succ_sum;
    out[0] = pred_sum;
    out[1] = succ_sum;
    out[2] = both;
    out[3] = ratio(pred_sum, dev);
    out[4] = ratio(succ_sum, dev);
    out[5] = ratio(both, dev);
    out[6] = ratio(pred_sum, fnr);
    out[7] = ratio(succ_sum, fnr);
    out[8] = ratio(both, fnr);
    out[9] = max;
    out[10] = ratio(max, both);
}

/// The 11 neighborhood features: pred/succ/both usage sums, their
/// device-utilization and function-utilization ratios, and the max-usage
/// neighbor with its share.
fn push_neighborhood(
    out: &mut Vec<f64>,
    preds: &[usize],
    succs: &[usize],
    usage: &impl Fn(usize) -> f64,
    dev: f64,
    fnr: f64,
) {
    // fold(0.0) rather than sum(): std's f64 sum identity is -0.0, which
    // would serialize an empty neighborhood as "-0" in the CSV.
    let pred_sum: f64 = preds.iter().map(|&p| usage(p)).fold(0.0, |a, b| a + b);
    let succ_sum: f64 = succs.iter().map(|&s| usage(s)).fold(0.0, |a, b| a + b);
    let both = pred_sum + succ_sum;
    out.push(pred_sum);
    out.push(succ_sum);
    out.push(both);
    out.push(ratio(pred_sum, dev));
    out.push(ratio(succ_sum, dev));
    out.push(ratio(both, dev));
    out.push(ratio(pred_sum, fnr));
    out.push(ratio(succ_sum, fnr));
    out.push(ratio(both, fnr));
    let max = preds
        .iter()
        .chain(succs.iter())
        .map(|&n| usage(n))
        .fold(0.0f64, f64::max);
    out.push(max);
    out.push(ratio(max, both));
}

pub(super) fn push_names(names: &mut Vec<String>) {
    for t in Resources::NAMES {
        names.push(format!("res_{t}_usage"));
        names.push(format!("res_{t}_util_dev"));
        names.push(format!("res_{t}_util_fn"));
        for hop in ["1hop", "2hop"] {
            for base in [
                "pred_sum",
                "succ_sum",
                "both_sum",
                "pred_util_dev",
                "succ_util_dev",
                "both_util_dev",
                "pred_util_fn",
                "succ_util_fn",
                "both_util_fn",
                "max_neighbor",
                "max_neighbor_share",
            ] {
                names.push(format!("res_{t}_{base}_{hop}"));
            }
        }
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        0.0
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_layout() {
        assert_eq!(COUNT, super::super::FeatureCategory::Resource.range().len());
        assert_eq!(PER_TYPE * Resources::KINDS, COUNT);
        let mut names = Vec::new();
        push_names(&mut names);
        assert_eq!(names.len(), COUNT);
    }
}
