//! Mapping predicted congestion back to source code (paper §III-D: "the
//! most congested part of the source code can be recognized").

use crate::predict::OpPrediction;
use hls_ir::Module;
use std::collections::HashMap;

/// A source-level congestion hot spot.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestedRegion {
    /// Function name.
    pub function: String,
    /// 1-based source line.
    pub line: u32,
    /// Maximum predicted congestion among the line's ops (%).
    pub max_congestion: f64,
    /// Mean predicted congestion.
    pub mean_congestion: f64,
    /// Number of operations lowered from this line.
    pub ops: usize,
}

/// Aggregate per-op predictions into ranked source regions (descending by
/// max predicted congestion). Ops with unknown source lines are skipped.
pub fn locate_congested(module: &Module, predictions: &[OpPrediction]) -> Vec<CongestedRegion> {
    let mut acc: HashMap<(u32, u32), (f64, f64, usize)> = HashMap::new();
    for p in predictions {
        if p.line == 0 {
            continue;
        }
        let e = acc.entry((p.func.0, p.line)).or_insert((0.0, 0.0, 0));
        e.0 = e.0.max(p.predicted);
        e.1 += p.predicted;
        e.2 += 1;
    }
    let mut regions: Vec<CongestedRegion> = acc
        .into_iter()
        .map(|((func, line), (max, sum, n))| CongestedRegion {
            function: module.functions[func as usize].name.clone(),
            line,
            max_congestion: max,
            mean_congestion: sum / n as f64,
            ops: n,
        })
        .collect();
    regions.sort_by(|a, b| {
        b.max_congestion
            .partial_cmp(&a.max_congestion)
            .unwrap()
            .then(a.line.cmp(&b.line))
    });
    regions
}

/// Render the top-`k` regions as a human-readable report, quoting the
/// offending source lines when `source` is provided.
pub fn render_report(regions: &[CongestedRegion], source: Option<&str>, k: usize) -> String {
    use std::fmt::Write;
    let lines: Vec<&str> = source.map(|s| s.lines().collect()).unwrap_or_default();
    let mut out = String::from("rank  max%    mean%   ops  location\n");
    for (i, r) in regions.iter().take(k).enumerate() {
        let _ = write!(
            out,
            "{:>4}  {:>6.1}  {:>6.1}  {:>3}  {}:{}",
            i + 1,
            r.max_congestion,
            r.mean_congestion,
            r.ops,
            r.function,
            r.line
        );
        if let Some(text) = lines.get(r.line as usize - 1) {
            let _ = write!(out, "    | {}", text.trim());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{FuncId, OpId};

    fn preds() -> Vec<OpPrediction> {
        vec![
            OpPrediction {
                func: FuncId(0),
                op: OpId(0),
                line: 3,
                predicted: 120.0,
            },
            OpPrediction {
                func: FuncId(0),
                op: OpId(1),
                line: 3,
                predicted: 80.0,
            },
            OpPrediction {
                func: FuncId(0),
                op: OpId(2),
                line: 7,
                predicted: 40.0,
            },
            OpPrediction {
                func: FuncId(0),
                op: OpId(3),
                line: 0, // unknown -> skipped
                predicted: 999.0,
            },
        ]
    }

    fn module() -> Module {
        let mut m = Module::new("t");
        m.push_function(hls_ir::Function::new(FuncId(0), "f"));
        m
    }

    #[test]
    fn regions_ranked_by_max() {
        let regions = locate_congested(&module(), &preds());
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].line, 3);
        assert_eq!(regions[0].max_congestion, 120.0);
        assert_eq!(regions[0].mean_congestion, 100.0);
        assert_eq!(regions[0].ops, 2);
        assert_eq!(regions[1].line, 7);
    }

    #[test]
    fn report_quotes_source() {
        let regions = locate_congested(&module(), &preds());
        let src = "line one\nline two\nhot line three\n";
        let text = render_report(&regions, Some(src), 5);
        assert!(text.contains("f:3"));
        assert!(text.contains("hot line three"));
    }
}
