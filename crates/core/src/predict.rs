//! Congestion prediction models (paper §III-C2, §IV-A).
//!
//! Wraps the three regressors the paper compares — Lasso, ANN, GBRT — behind
//! one interface, with optional grid search over the paper's protocol
//! (k-fold cross-validation on the training set only).

use crate::dataset::{CongestionDataset, Target};
use crate::features::{ExtractCtx, FEATURE_COUNT};
use crate::graph::DepGraph;
use fpga_fabric::Device;
use hls_ir::{FuncId, OpId};
use hls_synth::SynthesizedDesign;
use mlkit::cv::cross_val_mae_observed;
use mlkit::metrics::{mae, medae};
use mlkit::tree::TreeOptions;
use mlkit::{
    GbrtKernel, GbrtOptions, GbrtRegressor, Lasso, LassoOptions, MlpOptions, MlpRegressor,
    Regressor,
};
use obskit::Collector;

/// Which model family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Lasso linear regression.
    Linear,
    /// Multi-layer perceptron.
    Ann,
    /// Gradient-boosted regression trees.
    Gbrt,
}

impl ModelKind {
    /// All model kinds in the paper's row order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Linear, ModelKind::Ann, ModelKind::Gbrt];

    /// Display name (paper Table IV row labels).
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Linear => "Linear",
            ModelKind::Ann => "ANN",
            ModelKind::Gbrt => "GBRT",
        }
    }
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Run grid search (k-fold CV on the training set) before the final fit.
    pub grid_search: bool,
    /// Cross-validation folds (paper: 10).
    pub cv_folds: usize,
    /// Seed for CV shuffling.
    pub seed: u64,
    /// Effort multiplier in (0, 1]: scales epochs/estimators for fast tests.
    pub effort: f64,
    /// GBRT split-search engine (`--gbrt-kernel`).
    pub gbrt_kernel: GbrtKernel,
    /// GBRT histogram bin budget per feature (`--gbrt-bins`).
    pub gbrt_bins: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            grid_search: false,
            cv_folds: 10,
            seed: 5,
            effort: 1.0,
            gbrt_kernel: GbrtKernel::default(),
            gbrt_bins: mlkit::binning::DEFAULT_BINS,
        }
    }
}

impl TrainOptions {
    /// Reduced effort for tests.
    pub fn fast() -> Self {
        TrainOptions {
            cv_folds: 3,
            effort: 0.15,
            ..Self::default()
        }
    }
}

/// Accuracy summary (paper Table IV cell pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Mean absolute error (percentage points of congestion).
    pub mae: f64,
    /// Median absolute error.
    pub medae: f64,
}

enum Model {
    Linear(Lasso),
    Ann(MlpRegressor),
    Gbrt(GbrtRegressor),
}

impl Model {
    fn as_regressor(&self) -> &dyn Regressor {
        match self {
            Model::Linear(m) => m,
            Model::Ann(m) => m,
            Model::Gbrt(m) => m,
        }
    }
}

/// A trained congestion predictor for one target metric.
pub struct CongestionPredictor {
    /// Model family.
    pub kind: ModelKind,
    /// Target metric.
    pub target: Target,
    model: Model,
}

impl CongestionPredictor {
    /// Train a model of `kind` on `data` for `target`.
    pub fn train(
        kind: ModelKind,
        target: Target,
        data: &CongestionDataset,
        opts: &TrainOptions,
    ) -> CongestionPredictor {
        // Telemetry never perturbs training, so a throwaway collector
        // keeps `train` and `train_observed` on one code path.
        Self::train_observed(kind, target, data, opts, &Collector::new())
    }

    /// [`Self::train`] recording training telemetry into `obs`: a `train`
    /// span (annotated with model and target), per-fold CV telemetry when
    /// grid-searching, and the model's convergence curve
    /// (`train.gbrt.stage_loss` / `train.ann.epoch_loss` histograms —
    /// deterministic, since training is seeded).
    pub fn train_observed(
        kind: ModelKind,
        target: Target,
        data: &CongestionDataset,
        opts: &TrainOptions,
        obs: &Collector,
    ) -> CongestionPredictor {
        let mut train_span = obs.span("train");
        train_span.arg("model", kind.name());
        train_span.arg("target", target.name());
        train_span.arg("samples", data.len().to_string());
        let ml = data.to_ml(target);
        let effort = opts.effort.clamp(0.01, 1.0);
        let model = match kind {
            ModelKind::Linear => {
                let alphas = [0.001, 0.01, 0.1, 1.0];
                let alpha = if opts.grid_search {
                    let mut ds = mlkit::Dataset::with_cols(FEATURE_COUNT);
                    ds.extend(&ml_to_dataset(&ml));
                    let (best, _) = mlkit::cv::grid_search_observed(
                        &ds,
                        opts.cv_folds,
                        opts.seed,
                        &alphas,
                        |&a| {
                            Lasso::new(LassoOptions {
                                alpha: a,
                                max_iter: (200.0 * effort).max(20.0) as usize,
                                ..Default::default()
                            })
                        },
                        obs,
                    );
                    alphas[best]
                } else {
                    0.01
                };
                let mut m = Lasso::new(LassoOptions {
                    alpha,
                    max_iter: (500.0 * effort).max(30.0) as usize,
                    ..Default::default()
                });
                {
                    let _fit = obs.span("train.fit");
                    m.fit(&ml.x, &ml.y);
                }
                Model::Linear(m)
            }
            ModelKind::Ann => {
                let grids = [vec![64, 32], vec![128]];
                let hidden = if opts.grid_search {
                    let ds = ml_to_dataset(&ml);
                    let mut best = (0usize, f64::INFINITY);
                    for (i, h) in grids.iter().enumerate() {
                        let score = cross_val_mae_observed(
                            &ds,
                            opts.cv_folds,
                            opts.seed,
                            || {
                                MlpRegressor::new(MlpOptions {
                                    hidden: h.clone(),
                                    epochs: (40.0 * effort).max(3.0) as usize,
                                    ..Default::default()
                                })
                            },
                            obs,
                        );
                        obs.inc("cv.grid.points", 1);
                        if score < best.1 {
                            best = (i, score);
                        }
                    }
                    grids[best.0].clone()
                } else {
                    grids[0].clone()
                };
                let mut m = MlpRegressor::new(MlpOptions {
                    hidden,
                    epochs: (120.0 * effort).max(5.0) as usize,
                    ..Default::default()
                });
                {
                    let _fit = obs.span("train.fit");
                    m.fit_observed(&ml.x, &ml.y, obs);
                }
                Model::Ann(m)
            }
            ModelKind::Gbrt => {
                let depths = [3usize, 4];
                let depth = if opts.grid_search {
                    let ds = ml_to_dataset(&ml);
                    let mut best = (0usize, f64::INFINITY);
                    for (i, &d) in depths.iter().enumerate() {
                        let score = cross_val_mae_observed(
                            &ds,
                            opts.cv_folds,
                            opts.seed,
                            || {
                                GbrtRegressor::new(GbrtOptions {
                                    n_estimators: (60.0 * effort).max(5.0) as usize,
                                    learning_rate: (0.08 / effort.sqrt()).min(0.3),
                                    feature_fraction: (0.4 / effort.sqrt()).min(1.0),
                                    tree: TreeOptions {
                                        max_depth: d,
                                        ..Default::default()
                                    },
                                    kernel: opts.gbrt_kernel,
                                    max_bins: opts.gbrt_bins,
                                    // CV folds already run on parallel
                                    // workers; keep each fit serial so the
                                    // pools don't nest.
                                    workers: 1,
                                    ..Default::default()
                                })
                            },
                            obs,
                        );
                        obs.inc("cv.grid.points", 1);
                        if score < best.1 {
                            best = (i, score);
                        }
                    }
                    depths[best.0]
                } else {
                    4
                };
                // At reduced effort the ensemble has few stages; compensate
                // with a larger step and a full feature view per tree.
                let mut m = GbrtRegressor::new(GbrtOptions {
                    n_estimators: (250.0 * effort).max(10.0) as usize,
                    learning_rate: (0.08 / effort.sqrt()).min(0.3),
                    feature_fraction: (0.4 / effort.sqrt()).min(1.0),
                    tree: TreeOptions {
                        max_depth: depth,
                        ..Default::default()
                    },
                    kernel: opts.gbrt_kernel,
                    max_bins: opts.gbrt_bins,
                    // The final fit is the only one on this thread, so it
                    // may use the full worker pool (training stays
                    // bit-identical for any worker count).
                    workers: parkit::num_threads(),
                    ..Default::default()
                });
                {
                    let _fit = obs.span("train.fit");
                    m.fit_observed(&ml.x, &ml.y, obs);
                }
                Model::Gbrt(m)
            }
        };
        CongestionPredictor {
            kind,
            target,
            model,
        }
    }

    /// Evaluate on held-out data.
    pub fn evaluate(&self, test: &CongestionDataset) -> Accuracy {
        let ml = test.to_ml(self.target);
        let pred = self.model.as_regressor().predict(&ml.x);
        Accuracy {
            mae: mae(&ml.y, &pred),
            medae: medae(&ml.y, &pred),
        }
    }

    /// Predict the congestion of one feature vector.
    pub fn predict_features(&self, features: &[f64]) -> f64 {
        self.model.as_regressor().predict_one(features)
    }

    /// Predict per-operation congestion for a synthesized design *without*
    /// implementing it — the paper's prediction phase. Features for every
    /// op are extracted with the SoA kernel into one reused row buffer, so
    /// prediction no longer allocates a `Vec<f64>` per op.
    pub fn predict_design(&self, design: &SynthesizedDesign, device: &Device) -> Vec<OpPrediction> {
        let mut out = Vec::new();
        let mut row = [0.0f64; FEATURE_COUNT];
        for fid in design.module.bottom_up_order() {
            let f = design.module.function(fid);
            let binding = &design.bindings[&fid];
            let graph = DepGraph::build(f, Some(binding), true);
            let ctx = ExtractCtx::new(&graph, design, fid, device);
            for (ni, node) in graph.nodes.iter().enumerate() {
                if node.is_port || node.ops.is_empty() {
                    continue;
                }
                ctx.extract_into(ni, &mut row);
                let value = self.predict_features(&row);
                for &op in &node.ops {
                    out.push(OpPrediction {
                        func: fid,
                        op,
                        line: f.op(op).loc.map(|l| l.line).unwrap_or(0),
                        predicted: value,
                    });
                }
            }
        }
        out
    }

    /// The flattened inference engine, when this predictor is a GBRT.
    /// Serving exports this into a `servekit` model artifact so `congestd`
    /// predicts without carrying the training-side ensemble.
    pub fn compiled_ensemble(&self) -> Option<&mlkit::CompiledEnsemble> {
        match &self.model {
            Model::Gbrt(m) => Some(m.compiled()),
            _ => None,
        }
    }

    /// GBRT split-count feature importance (None for other models).
    pub fn feature_importance(&self) -> Option<Vec<f64>> {
        match &self.model {
            Model::Gbrt(m) => Some(m.feature_importance()),
            _ => None,
        }
    }

    /// Model telemetry on `data` (typically the held-out split): split-gain
    /// importance for the GBRT, plus prediction/residual quantile sketches
    /// for any model family. Feeds the run ledger (`--ledger-out`).
    pub fn telemetry(&self, data: &CongestionDataset) -> mlkit::ModelTelemetry {
        let ml = data.to_ml(self.target);
        match &self.model {
            Model::Gbrt(m) => mlkit::ModelTelemetry::of_gbrt(m, &ml.x, &ml.y),
            other => mlkit::ModelTelemetry::of_regressor(other.as_regressor(), &ml.x, &ml.y),
        }
    }
}

/// Extract one feature row per operation of a synthesized design — the
/// serving-path twin of [`CongestionPredictor::predict_design`]: identical
/// extraction (same graph, same SoA kernel), but the raw rows come back
/// (paired with their source lines) instead of being pushed through a
/// model, so `congestd` can batch them through whatever artifact is
/// active.
pub fn extract_feature_rows(
    design: &SynthesizedDesign,
    device: &Device,
) -> (Vec<Vec<f64>>, Vec<u32>) {
    let mut rows = Vec::new();
    let mut lines = Vec::new();
    let mut row = [0.0f64; FEATURE_COUNT];
    for fid in design.module.bottom_up_order() {
        let f = design.module.function(fid);
        let binding = &design.bindings[&fid];
        let graph = DepGraph::build(f, Some(binding), true);
        let ctx = ExtractCtx::new(&graph, design, fid, device);
        for (ni, node) in graph.nodes.iter().enumerate() {
            if node.is_port || node.ops.is_empty() {
                continue;
            }
            ctx.extract_into(ni, &mut row);
            for &op in &node.ops {
                rows.push(row.to_vec());
                lines.push(f.op(op).loc.map(|l| l.line).unwrap_or(0));
            }
        }
    }
    (rows, lines)
}

/// The digest-keyed extraction entry point for serving-layer caches:
/// a stable 64-bit key over `(design name, source text)`, stamped with the
/// feature schema width and the active extract kernel so a schema or
/// kernel change can never alias a cache entry produced under different
/// extraction semantics. `congestd` wires this in as the feature-cache
/// key function; two processes (or two runs) computing the key for the
/// same source always agree.
pub fn source_digest(name: &str, text: &str) -> u64 {
    let width = FEATURE_COUNT.to_le_bytes();
    let kernel = crate::features::ExtractKernel::default().name();
    faultkit::fnv1a(&[
        b"congestion-core.source.v1",
        &width,
        kernel.as_bytes(),
        b"\0",
        name.as_bytes(),
        b"\0",
        text.as_bytes(),
    ])
}

/// A per-operation congestion prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPrediction {
    /// Function containing the op.
    pub func: FuncId,
    /// The op.
    pub op: OpId,
    /// Source line (0 = unknown).
    pub line: u32,
    /// Predicted congestion (%).
    pub predicted: f64,
}

fn ml_to_dataset(ml: &mlkit::Dataset) -> mlkit::Dataset {
    ml.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_COUNT;
    use hls_ir::{FuncId, OpId};

    fn synthetic_dataset(n: usize) -> CongestionDataset {
        // Label depends on features 0 and 1.
        let mut ds = CongestionDataset::new();
        for i in 0..n {
            let a = (i % 13) as f64;
            let b = ((i * 5) % 7) as f64;
            let mut features = vec![0.0; FEATURE_COUNT];
            features[0] = a;
            features[1] = b;
            let label = 5.0 * a + 2.0 * b * b;
            ds.push(
                crate::dataset::Sample {
                    design: "synthetic".into(),
                    func: FuncId(0),
                    op: OpId(i as u32),
                    line: 1,
                    replica: None,
                    vertical: label,
                    horizontal: label / 2.0,
                },
                &features,
            );
        }
        ds
    }

    #[test]
    fn source_digest_is_stable_and_discriminating() {
        let a = source_digest("fir", "int32 f() { return 1; }");
        assert_eq!(
            a,
            source_digest("fir", "int32 f() { return 1; }"),
            "same inputs, same key — across calls and across processes"
        );
        assert_ne!(a, source_digest("fir2", "int32 f() { return 1; }"));
        assert_ne!(a, source_digest("fir", "int32 f() { return 2; }"));
        // Name/text boundary cannot alias.
        assert_ne!(source_digest("ab", "c"), source_digest("a", "bc"));
    }

    #[test]
    fn all_models_train_and_predict() {
        let ds = synthetic_dataset(300);
        let (train, test) = ds.split(0.2, 1);
        for kind in ModelKind::ALL {
            let p =
                CongestionPredictor::train(kind, Target::Vertical, &train, &TrainOptions::fast());
            let acc = p.evaluate(&test);
            assert!(acc.mae.is_finite());
            assert!(acc.medae <= acc.mae * 3.0 + 1.0);
        }
    }

    #[test]
    fn gbrt_beats_linear_on_nonlinear_labels() {
        let ds = synthetic_dataset(400);
        let (train, test) = ds.split(0.2, 1);
        let opts = TrainOptions {
            effort: 0.5,
            ..TrainOptions::fast()
        };
        let lin = CongestionPredictor::train(ModelKind::Linear, Target::Vertical, &train, &opts)
            .evaluate(&test);
        let gbrt = CongestionPredictor::train(ModelKind::Gbrt, Target::Vertical, &train, &opts)
            .evaluate(&test);
        assert!(
            gbrt.mae < lin.mae,
            "gbrt {} should beat linear {} on b^2 term",
            gbrt.mae,
            lin.mae
        );
    }

    #[test]
    fn importance_only_for_gbrt() {
        let ds = synthetic_dataset(200);
        let opts = TrainOptions::fast();
        let g = CongestionPredictor::train(ModelKind::Gbrt, Target::Vertical, &ds, &opts);
        let imp = g.feature_importance().unwrap();
        assert_eq!(imp.len(), FEATURE_COUNT);
        assert!(imp[0] > 0.0, "informative feature used for splits");
        let l = CongestionPredictor::train(ModelKind::Linear, Target::Vertical, &ds, &opts);
        assert!(l.feature_importance().is_none());
    }

    #[test]
    fn targets_change_labels() {
        let ds = synthetic_dataset(100);
        let opts = TrainOptions::fast();
        let v = CongestionPredictor::train(ModelKind::Linear, Target::Vertical, &ds, &opts);
        let h = CongestionPredictor::train(ModelKind::Linear, Target::Horizontal, &ds, &opts);
        let row = ds.features_of(0);
        let pv = v.predict_features(row);
        let ph = h.predict_features(row);
        assert!((pv - ph).abs() > 1e-6, "different targets, different fits");
    }
}
