//! Dataset assembly: one sample per dependency-graph node that materialized
//! into hardware, with its 302 features and (V, H) congestion labels.
//!
//! Features live in one flat row-major [`Matrix`] owned by the dataset
//! (structure-of-arrays), not in per-sample `Vec`s: row `i` of the matrix
//! belongs to `samples[i]`. The SoA extract kernel writes each row in
//! place, and [`CongestionDataset::to_ml`] hands the whole block to mlkit
//! without copying a single row.

use crate::backtrace::{backtrace_labels, BacktraceError, OpLabel};
use crate::features::{ExtractCtx, ExtractKernel, FEATURE_COUNT};
use crate::graph::DepGraph;
use fpga_fabric::{Device, ImplResult};
use hls_ir::{FuncId, OpId, ReplicaTag};
use hls_synth::SynthesizedDesign;
use mlkit::dataset::{Dataset, Matrix};

/// One labelled sample's metadata. Its 302 features are row `i` of the
/// owning [`CongestionDataset`]'s feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Design name.
    pub design: String,
    /// Function the op belongs to.
    pub func: FuncId,
    /// Representative op of the graph node.
    pub op: OpId,
    /// Source line of the op (0 = unknown).
    pub line: u32,
    /// Unroll provenance (for the marginal filter).
    pub replica: Option<ReplicaTag>,
    /// Vertical congestion label (%).
    pub vertical: f64,
    /// Horizontal congestion label (%).
    pub horizontal: f64,
}

impl Sample {
    /// The paper's Avg(V, H) label.
    pub fn average(&self) -> f64 {
        (self.vertical + self.horizontal) / 2.0
    }
}

/// Which congestion metric a model is trained on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Vertical congestion.
    Vertical,
    /// Horizontal congestion.
    Horizontal,
    /// Mean of the two.
    Average,
}

impl Target {
    /// All targets in the paper's column order.
    pub const ALL: [Target; 3] = [Target::Vertical, Target::Horizontal, Target::Average];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Target::Vertical => "Vertical",
            Target::Horizontal => "Horizontal",
            Target::Average => "Avg(V,H)",
        }
    }

    /// The label of a sample under this target.
    pub fn of(&self, s: &Sample) -> f64 {
        match self {
            Target::Vertical => s.vertical,
            Target::Horizontal => s.horizontal,
            Target::Average => s.average(),
        }
    }
}

/// The congestion dataset (paper §IV: 8111 samples over the suite).
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionDataset {
    /// Per-sample metadata; `samples[i]` owns feature row `i`.
    pub samples: Vec<Sample>,
    /// Flat row-major feature block, `FEATURE_COUNT` columns.
    features: Matrix,
}

impl Default for CongestionDataset {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionDataset {
    /// An empty dataset.
    pub fn new() -> Self {
        CongestionDataset {
            samples: Vec::new(),
            features: Matrix::with_cols(FEATURE_COUNT),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append one sample with an explicit feature row.
    ///
    /// # Panics
    /// Panics if `features.len() != FEATURE_COUNT`.
    pub fn push(&mut self, sample: Sample, features: &[f64]) {
        self.features.push_row(features);
        self.samples.push(sample);
    }

    /// Append one sample and return its zero-filled feature row for
    /// in-place extraction (the SoA fast path).
    pub fn alloc_row(&mut self, sample: Sample) -> &mut [f64] {
        self.samples.push(sample);
        self.features.alloc_row()
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn features_of(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// The whole feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutable feature matrix (feature-knockout ablations edit columns in
    /// place).
    pub fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Append every sample of `other`, preserving order. The feature block
    /// moves as one flat copy — this is how per-design datasets merge back
    /// into the build's dataset without touching individual rows.
    pub fn extend(&mut self, other: &CongestionDataset) {
        self.samples.extend_from_slice(&other.samples);
        self.features.extend(&other.features);
    }

    /// Add every hardware-backed graph node of `design` as a sample using
    /// the default (SoA) extract kernel.
    ///
    /// # Errors
    /// Fails with a [`BacktraceError`] when op→cell provenance is broken
    /// (or a chaos plan injects a fault at the `backtrace`/`features`
    /// points); the dataset is left untouched in that case.
    pub fn add_design(
        &mut self,
        design: &SynthesizedDesign,
        impl_result: &ImplResult,
        device: &Device,
    ) -> Result<usize, BacktraceError> {
        self.add_design_with(design, impl_result, device, ExtractKernel::default())
    }

    /// [`CongestionDataset::add_design`] with an explicit extract kernel.
    /// Both kernels produce bitwise-identical rows; `Reference` is the
    /// original per-node allocation path kept for differential testing.
    ///
    /// # Errors
    /// Same contract as [`CongestionDataset::add_design`].
    pub fn add_design_with(
        &mut self,
        design: &SynthesizedDesign,
        impl_result: &ImplResult,
        device: &Device,
        kernel: ExtractKernel,
    ) -> Result<usize, BacktraceError> {
        let labels = backtrace_labels(design, impl_result)?;
        faultkit::inject("features").map_err(|f| BacktraceError::Injected(f.to_string()))?;
        let before = self.samples.len();
        for fid in design.module.bottom_up_order() {
            let f = design.module.function(fid);
            let binding = &design.bindings[&fid];
            let graph = DepGraph::build(f, Some(binding), true);
            let ctx = ExtractCtx::new(&graph, design, fid, device);
            for (ni, node) in graph.nodes.iter().enumerate() {
                if node.is_port {
                    continue;
                }
                // A node is labelled if any member op has hardware.
                let Some((op, label)) = node
                    .ops
                    .iter()
                    .find_map(|&o| labels.get(&(fid, o)).map(|l| (o, *l)))
                else {
                    continue;
                };
                let OpLabel {
                    vertical,
                    horizontal,
                    ..
                } = label;
                let op_ref = f.op(op);
                let sample = Sample {
                    design: design.module.name.clone(),
                    func: fid,
                    op,
                    line: op_ref.loc.map(|l| l.line).unwrap_or(0),
                    replica: op_ref.replica,
                    vertical,
                    horizontal,
                };
                match kernel {
                    ExtractKernel::Soa => ctx.extract_into(ni, self.alloc_row(sample)),
                    ExtractKernel::Reference => self.push(sample, &ctx.extract(ni)),
                }
            }
        }
        Ok(self.samples.len() - before)
    }

    /// The dataset's statistical identity: per-column distribution
    /// sketches plus a digest of the raw matrix bits (see
    /// [`crate::fingerprint`]). Fingerprints of bit-identical datasets are
    /// byte-identical, so this inherits the 1-vs-N-worker invariance of
    /// the build itself.
    pub fn fingerprint(&self) -> crate::fingerprint::DatasetFingerprint {
        crate::fingerprint::DatasetFingerprint::of(self)
    }

    /// Convert to an [`mlkit`] dataset for a given target metric. The
    /// feature block is cloned as one flat buffer — no per-row copies.
    pub fn to_ml(&self, target: Target) -> Dataset {
        Dataset {
            x: self.features.clone(),
            y: self.samples.iter().map(|s| target.of(s)).collect(),
        }
    }

    /// Deterministic train/test split at the sample level.
    ///
    /// `test_fraction` is clamped to `[0, 1]` (NaN counts as 0). Whenever
    /// the dataset has at least two samples and the fraction is non-zero
    /// after clamping, both halves are guaranteed non-empty — a tiny
    /// dataset can no longer round its way into an empty test set (which
    /// used to make `evaluate` panic downstream).
    pub fn split(&self, test_fraction: f64, seed: u64) -> (CongestionDataset, CongestionDataset) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let fraction = if test_fraction.is_nan() {
            0.0
        } else {
            test_fraction.clamp(0.0, 1.0)
        };
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let mut n_test = ((self.len() as f64) * fraction).round() as usize;
        if self.len() >= 2 && fraction > 0.0 {
            n_test = n_test.clamp(1, self.len() - 1);
        }
        let (test, train) = idx.split_at(n_test.min(self.len()));
        let pick = |ids: &[usize]| CongestionDataset {
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
            features: self.features.select(ids),
        };
        (pick(train), pick(test))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::par::{run_par, ParOptions};
    use hls_ir::frontend::compile;
    use hls_synth::{HlsFlow, HlsOptions};

    fn build_dataset(srcs: &[&str]) -> CongestionDataset {
        let device = Device::xc7z020();
        let mut ds = CongestionDataset::new();
        for (i, src) in srcs.iter().enumerate() {
            let m = hls_ir::frontend::compile_named(src, &format!("d{i}")).unwrap();
            let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
            let r = run_par(&d, &device, &ParOptions::fast());
            let added = ds.add_design(&d, &r, &device).unwrap();
            assert!(added > 0, "every test design yields samples");
        }
        ds
    }

    const SRC: &str =
        "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }";

    #[test]
    fn samples_have_302_features() {
        let ds = build_dataset(&[SRC]);
        assert!(!ds.is_empty());
        assert_eq!(ds.features().rows(), ds.len());
        assert_eq!(ds.features().cols(), FEATURE_COUNT);
        for (i, s) in ds.samples.iter().enumerate() {
            assert_eq!(ds.features_of(i).len(), FEATURE_COUNT);
            assert!(ds.features_of(i).iter().all(|v| v.is_finite()));
            assert!(s.vertical >= 0.0 && s.horizontal >= 0.0);
        }
    }

    #[test]
    fn both_kernels_build_identical_datasets() {
        let device = Device::xc7z020();
        let m = hls_ir::frontend::compile_named(SRC, "d0").unwrap();
        let d = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
        let r = run_par(&d, &device, &ParOptions::fast());
        let mut soa = CongestionDataset::new();
        let mut reference = CongestionDataset::new();
        soa.add_design_with(&d, &r, &device, ExtractKernel::Soa)
            .unwrap();
        reference
            .add_design_with(&d, &r, &device, ExtractKernel::Reference)
            .unwrap();
        assert_eq!(soa, reference);
    }

    #[test]
    fn multiple_designs_accumulate() {
        let one = build_dataset(&[SRC]).len();
        let two = build_dataset(&[SRC, "int32 g(int32 x, int32 y) { return x * y - x; }"]).len();
        assert!(two > one);
    }

    #[test]
    fn to_ml_respects_target() {
        let ds = build_dataset(&[SRC]);
        let v = ds.to_ml(Target::Vertical);
        let h = ds.to_ml(Target::Horizontal);
        let a = ds.to_ml(Target::Average);
        assert_eq!(v.len(), ds.len());
        assert_eq!(v.x.rows(), ds.len());
        for i in 0..ds.len() {
            assert!((a.y[i] - (v.y[i] + h.y[i]) / 2.0).abs() < 1e-9);
            assert_eq!(v.x.row(i), ds.features_of(i), "to_ml must not reorder rows");
        }
        let _ = compile(SRC).unwrap();
    }

    #[test]
    fn split_partitions_samples() {
        let ds = build_dataset(&[SRC]);
        let (train, test) = ds.split(0.2, 42);
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(!test.is_empty());
        assert_eq!(train.features().rows(), train.len());
        assert_eq!(test.features().rows(), test.len());
    }

    /// A dataset of `n` synthetic samples — `split` only looks at indices.
    fn synthetic(n: usize) -> CongestionDataset {
        let mut ds = CongestionDataset::new();
        for i in 0..n {
            ds.push(
                Sample {
                    design: format!("s{i}"),
                    func: FuncId(0),
                    op: OpId(i as u32),
                    line: 0,
                    replica: None,
                    vertical: 0.0,
                    horizontal: 0.0,
                },
                &vec![0.0; FEATURE_COUNT],
            );
        }
        ds
    }

    #[test]
    fn split_never_returns_empty_test_for_two_plus_samples() {
        // 2 samples at 10%: round(0.2) = 0 used to leave the test set
        // empty; the guarantee is ≥1 test sample whenever len ≥ 2.
        for n in 2..12 {
            let (train, test) = synthetic(n).split(0.1, 3);
            assert!(!test.is_empty(), "empty test set for n = {n}");
            assert!(!train.is_empty(), "empty train set for n = {n}");
            assert_eq!(train.len() + test.len(), n);
        }
    }

    #[test]
    fn split_clamps_fraction_to_unit_interval() {
        let ds = synthetic(10);
        // Above 1: everything the guarantee allows goes to test.
        let (train, test) = ds.split(7.5, 1);
        assert_eq!(test.len(), 9);
        assert_eq!(train.len(), 1);
        // Below 0 (and NaN): nothing goes to test.
        let (train, test) = ds.split(-0.3, 1);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = ds.split(f64::NAN, 1);
        assert_eq!((train.len(), test.len()), (10, 0));
    }

    #[test]
    fn split_edge_sizes() {
        // Empty and singleton datasets stay degenerate but never panic.
        let (train, test) = synthetic(0).split(0.5, 1);
        assert_eq!((train.len(), test.len()), (0, 0));
        let (train, test) = synthetic(1).split(0.99, 1);
        assert_eq!(train.len() + test.len(), 1);
    }
}
