//! The metrics registry: monotonic counters, gauges, fixed-bucket
//! histograms, and deterministic merging.
//!
//! Metric names follow the `stage.metric` convention (`route.expanded_nodes`,
//! `train.gbrt.stage_loss`, `cv.fold.wall_ms`). Names ending in `_ms`, `_us`
//! or `_ns` are **timing metrics**: their values are wall-clock and therefore
//! nondeterministic, so [`MetricsSnapshot::deterministic_digest`] includes
//! only their sample *counts*, not their bucket distribution.

use crate::json;
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds: 1–2.5–5 steps over nine decades,
/// wide enough for loss values, overflow tile counts, and millisecond
/// timings alike. Values above the last bound land in the overflow bucket.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
];

/// True when `name` denotes a wall-clock metric whose *values* are
/// nondeterministic (the sample count still is deterministic).
pub fn is_timing_metric(name: &str) -> bool {
    name.ends_with("_ms") || name.ends_with("_us") || name.ends_with("_ns")
}

/// A fixed-bucket histogram snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`, the
    /// last entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// An empty histogram over the given bounds.
    pub fn new(bounds: &[f64]) -> HistogramSnapshot {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
        }
    }

    /// Record one value.
    pub fn observe(&mut self, value: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += value;
    }

    /// Total sample count.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum / n as f64
        }
    }

    /// Estimated quantile (`q` in [0, 1]) by linear interpolation inside
    /// the bucket containing the target rank. Returns 0 when empty; the
    /// overflow bucket reports the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * n as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if rank <= next as f64 {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds.get(i).copied().unwrap_or(lo);
                let frac = (rank - seen as f64) / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            seen = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Add another histogram's samples into this one.
    ///
    /// # Panics
    /// Panics when the bucket bounds differ — one metric name must always
    /// use one bucket layout, or merged snapshots would silently lie.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bucket layouts differ; use one layout per metric name"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

/// A point-in-time view of every metric: the unit of merging and export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written values (wall-clocks, final losses, …).
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge `other` into `self`: counters and histogram buckets add,
    /// gauges take `other`'s value (last write wins). Callers must merge
    /// in input order — same rule as `parkit` — for deterministic results.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// The deterministic view of this snapshot, as a canonical string:
    /// every counter with its value, and every histogram with its total
    /// sample count — plus full bucket counts for non-timing histograms.
    /// Two runs of a deterministic workload produce equal digests for any
    /// worker count; wall-clock content (gauges, timing-histogram values)
    /// is excluded.
    pub fn deterministic_digest(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k}={v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("hist {k} n={}", h.count()));
            if !is_timing_metric(k) {
                let buckets: Vec<String> = h.counts.iter().map(u64::to_string).collect();
                out.push_str(&format!(" buckets={}", buckets.join(",")));
                out.push_str(&format!(" sum={}", json::number(h.sum)));
            }
            out.push('\n');
        }
        out
    }
}

/// The mutable registry a [`crate::Collector`] writes into.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    snap: MetricsSnapshot,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to the counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.snap.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.snap.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into histogram `name` with [`DEFAULT_BUCKETS`].
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, value, DEFAULT_BUCKETS);
    }

    /// Record `value` into histogram `name`, creating it with the given
    /// bucket bounds on first use. Later observations reuse the layout the
    /// histogram was created with.
    pub fn observe_with(&mut self, name: &str, value: f64, bounds: &[f64]) {
        self.snap
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSnapshot::new(bounds))
            .observe(value);
    }

    /// Merge a finished unit's snapshot into this registry (input order!).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.snap.merge(other);
    }

    /// Clone out the current snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snap.clone()
    }

    /// Consume the registry, yielding its snapshot without a clone.
    pub fn into_snapshot(self) -> MetricsSnapshot {
        self.snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.inc("a.b", 2);
        r.inc("a.b", 3);
        assert_eq!(r.snapshot().counters["a.b"], 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = HistogramSnapshot::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert!((h.sum - 106.6).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50 = {p50}");
        // Quantiles never exceed the last finite bound.
        assert!(h.quantile(0.99) <= 4.0);
        assert_eq!(HistogramSnapshot::new(&[1.0]).quantile(0.5), 0.0);
    }

    #[test]
    fn merge_is_additive_for_counters_and_buckets() {
        let mut a = Registry::new();
        a.inc("n", 1);
        a.observe_with("h", 0.5, &[1.0, 2.0]);
        a.set_gauge("g", 1.0);
        let mut b = Registry::new();
        b.inc("n", 2);
        b.observe_with("h", 1.5, &[1.0, 2.0]);
        b.set_gauge("g", 7.0);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["n"], 3);
        assert_eq!(merged.histograms["h"].counts, vec![1, 1, 0]);
        assert_eq!(merged.gauges["g"], 7.0, "gauges are last-write-wins");
    }

    #[test]
    #[should_panic(expected = "bucket layouts differ")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = HistogramSnapshot::new(&[1.0]);
        let b = HistogramSnapshot::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn digest_ignores_wall_clock_content() {
        let make = |ms: f64| {
            let mut r = Registry::new();
            r.inc("route.expanded_nodes", 41);
            r.observe("route.pass_overflow", 3.0);
            r.observe("cv.fold.wall_ms", ms); // timing metric: value varies
            r.set_gauge("dataset.wall_ms", ms);
            r.snapshot().deterministic_digest()
        };
        assert_eq!(make(1.0), make(999.0));
        assert!(make(1.0).contains("counter route.expanded_nodes=41"));
        assert!(make(1.0).contains("hist cv.fold.wall_ms n=1\n"));
        assert!(make(1.0).contains("hist route.pass_overflow n=1 buckets="));
    }

    #[test]
    fn merge_order_independent_for_counts_not_gauges() {
        let mut a = Registry::new();
        a.inc("c", 1);
        let mut b = Registry::new();
        b.inc("c", 2);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab.deterministic_digest(), ba.deterministic_digest());
    }
}
