//! Hierarchical spans and the per-unit [`Collector`].
//!
//! A collector is single-threaded by design: each unit of parallel work
//! (one design, one CV fold, one grid point) owns its own collector,
//! finishes it into an [`ObsRecord`], and the coordinating thread absorbs
//! the records **in input order** — the same determinism rule as `parkit`.
//! Nesting needs no explicit parent ids: Chrome trace viewers reconstruct
//! the hierarchy from `ts`/`dur` containment on one `tid`, which guard
//! scoping guarantees.

use crate::clock;
use crate::metrics::{MetricsSnapshot, Registry};
use std::cell::RefCell;

/// One completed span, in Chrome trace-event terms.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (`design`, `hls`, `route`, …).
    pub name: String,
    /// Category shown by trace viewers (defaults to `pipeline`).
    pub cat: String,
    /// Start, microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Thread id the span ran on (see [`clock::thread_tid`]).
    pub tid: u64,
    /// Free-form key/value annotations (design name, error text, …).
    pub args: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<SpanEvent>,
    registry: Registry,
}

/// A per-unit span and metrics collector.
///
/// Interior mutability (single-threaded `RefCell`) lets nested [`SpanGuard`]s
/// and metric calls share one `&Collector` — a collector is moved across
/// threads (created in a worker, finished, returned), never shared.
#[derive(Debug, Default)]
pub struct Collector {
    inner: RefCell<Inner>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Open a span; it records itself when the guard drops (or on
    /// [`SpanGuard::end`]).
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        self.span_cat(name, "pipeline")
    }

    /// [`Collector::span`] with an explicit category.
    pub fn span_cat(&self, name: impl Into<String>, cat: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            collector: self,
            name: name.into(),
            cat: cat.into(),
            ts_us: clock::now_us(),
            args: Vec::new(),
            recorded: false,
        }
    }

    /// Add `delta` to counter `name`.
    pub fn inc(&self, name: &str, delta: u64) {
        self.inner.borrow_mut().registry.inc(name, delta);
    }

    /// Set gauge `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.borrow_mut().registry.set_gauge(name, value);
    }

    /// Record `value` into histogram `name` (default buckets).
    pub fn observe(&self, name: &str, value: f64) {
        self.inner.borrow_mut().registry.observe(name, value);
    }

    /// Record `value` into histogram `name`, created with `bounds`.
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        self.inner
            .borrow_mut()
            .registry
            .observe_with(name, value, bounds);
    }

    /// Absorb a finished unit's record: events append (input order),
    /// metrics merge additively.
    pub fn absorb(&self, rec: ObsRecord) {
        let mut inner = self.inner.borrow_mut();
        inner.events.extend(rec.events);
        inner.registry.merge(&rec.metrics);
    }

    /// Current metrics snapshot (events stay in the collector).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.borrow().registry.snapshot()
    }

    /// Finish the collector into an immutable record.
    pub fn finish(self) -> ObsRecord {
        let inner = self.inner.into_inner();
        ObsRecord {
            events: inner.events,
            metrics: inner.registry.into_snapshot(),
        }
    }
}

/// An open span; records a [`SpanEvent`] into its collector on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    collector: &'a Collector,
    name: String,
    cat: String,
    ts_us: u64,
    args: Vec<(String, String)>,
    recorded: bool,
}

impl SpanGuard<'_> {
    /// Attach a key/value annotation to the span.
    pub fn arg(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.args.push((key.into(), value.into()));
    }

    /// Close the span now (otherwise the drop does).
    pub fn end(self) {}

    fn record(&mut self) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        let event = SpanEvent {
            name: std::mem::take(&mut self.name),
            cat: std::mem::take(&mut self.cat),
            ts_us: self.ts_us,
            dur_us: clock::now_us().saturating_sub(self.ts_us),
            tid: clock::thread_tid(),
            args: std::mem::take(&mut self.args),
        };
        self.collector.inner.borrow_mut().events.push(event);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

/// A span detached from any collector: it carries its start timestamp and
/// annotations by value, so it can ride along with a unit of work that
/// migrates across threads (a [`SpanGuard`] borrows its collector and
/// cannot). The cross-stage pipelined dataset executor opens one of these
/// per design at the first stage and records it into the design's
/// collector when the last stage finishes.
#[derive(Debug, Clone)]
pub struct OwnedSpan {
    name: String,
    cat: String,
    ts_us: u64,
    args: Vec<(String, String)>,
}

impl OwnedSpan {
    /// Start a detached span now (category `pipeline`).
    pub fn start(name: impl Into<String>) -> OwnedSpan {
        OwnedSpan {
            name: name.into(),
            cat: "pipeline".to_string(),
            ts_us: clock::now_us(),
            args: Vec::new(),
        }
    }

    /// Attach a key/value annotation to the span.
    pub fn arg(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.args.push((key.into(), value.into()));
    }

    /// Close the span now and record it into `obs`, with the duration
    /// measured from [`OwnedSpan::start`] to this call. The recording
    /// thread's tid is used — for a migrating span there is no single
    /// owning thread, and trace viewers reconstruct nesting from
    /// `ts`/`dur` containment.
    pub fn record_into(self, obs: &Collector) {
        let event = SpanEvent {
            name: self.name,
            cat: self.cat,
            ts_us: self.ts_us,
            dur_us: clock::now_us().saturating_sub(self.ts_us),
            tid: clock::thread_tid(),
            args: self.args,
        };
        obs.inner.borrow_mut().events.push(event);
    }
}

/// A finished collector: the merge and export unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsRecord {
    /// Completed spans, in completion order within a unit and in absorb
    /// (input) order across units.
    pub events: Vec<SpanEvent>,
    /// The unit's metrics.
    pub metrics: MetricsSnapshot,
}

impl ObsRecord {
    /// An empty record.
    pub fn new() -> ObsRecord {
        ObsRecord::default()
    }

    /// Merge many unit records in iteration (= input) order.
    pub fn merged(units: impl IntoIterator<Item = ObsRecord>) -> ObsRecord {
        let out = Collector::new();
        for u in units {
            out.absorb(u);
        }
        out.finish()
    }

    /// Total duration of every span with the given name (µs).
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.dur_us)
            .sum()
    }
}

// Collectors and records cross thread boundaries by move (worker → merge).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Collector>();
    assert_send::<ObsRecord>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_in_completion_order() {
        let obs = Collector::new();
        {
            let mut outer = obs.span("design");
            outer.arg("design", "d0");
            {
                let _inner = obs.span("hls");
            }
        }
        let rec = obs.finish();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[0].name, "hls");
        assert_eq!(rec.events[1].name, "design");
        assert_eq!(rec.events[1].args, vec![("design".into(), "d0".into())]);
        // The outer span contains the inner one on the timeline.
        assert!(rec.events[1].ts_us <= rec.events[0].ts_us);
        assert!(
            rec.events[1].ts_us + rec.events[1].dur_us
                >= rec.events[0].ts_us + rec.events[0].dur_us
        );
    }

    #[test]
    fn absorb_merges_metrics_and_appends_events() {
        let unit = |n: u64| {
            let c = Collector::new();
            let _s = c.span(format!("unit{n}"));
            c.inc("work.items", n);
            drop(_s);
            c.finish()
        };
        let main = Collector::new();
        main.absorb(unit(1));
        main.absorb(unit(2));
        let rec = main.finish();
        assert_eq!(rec.metrics.counters["work.items"], 3);
        assert_eq!(rec.events[0].name, "unit1");
        assert_eq!(rec.events[1].name, "unit2");
    }

    #[test]
    fn span_total_sums_same_name() {
        let obs = Collector::new();
        obs.span("x").end();
        obs.span("x").end();
        obs.span("y").end();
        let rec = obs.finish();
        assert_eq!(
            rec.span_total_us("x"),
            rec.events[0].dur_us + rec.events[1].dur_us
        );
    }

    #[test]
    fn owned_span_keeps_start_and_contains_later_spans() {
        let obs = Collector::new();
        let mut span = OwnedSpan::start("design");
        span.arg("design", "d0");
        obs.span("hls").end();
        span.record_into(&obs);
        let rec = obs.finish();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[1].name, "design");
        assert_eq!(rec.events[1].args, vec![("design".into(), "d0".into())]);
        // Started before and ended after the hls span: containment holds.
        assert!(rec.events[1].ts_us <= rec.events[0].ts_us);
        assert!(
            rec.events[1].ts_us + rec.events[1].dur_us
                >= rec.events[0].ts_us + rec.events[0].dur_us
        );
    }

    #[test]
    fn merged_respects_input_order() {
        let mk = |name: &str| {
            let c = Collector::new();
            c.span(name).end();
            c.finish()
        };
        let rec = ObsRecord::merged(vec![mk("a"), mk("b"), mk("c")]);
        let names: Vec<&str> = rec.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
