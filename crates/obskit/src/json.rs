//! Minimal JSON writing helpers (no serde in-tree).

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number literal. Non-finite floats have no JSON form and become
/// `null`; everything else round-trips via Rust's shortest representation.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps a decimal point / exponent, so the value re-parses
        // as the same f64.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_valid_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
