//! # obskit
//!
//! Zero-dependency structured observability for the HLS → PAR → ML
//! pipeline: hierarchical **spans** on monotonic clocks, a **metrics
//! registry** (counters, gauges, fixed-bucket histograms), and **sinks**
//! that export a Chrome trace-event file (`chrome://tracing` / Perfetto),
//! a flat JSON metrics snapshot, and a human-readable profile table.
//!
//! The container this workspace builds in has no network access (same
//! constraint that produced the `shims/` crates), so everything here is
//! `std`-only — no `tracing`, no `serde`.
//!
//! ## Determinism contract
//!
//! The pipeline fans work out across threads via `parkit`, whose rule is
//! *merge results in input order*. obskit follows the same rule: each unit
//! of work records into its own [`Collector`], finishes it into an
//! [`ObsRecord`], and the caller absorbs the records **in input order**.
//! Counters and histogram *counts* are therefore bit-identical for 1 vs N
//! workers whenever the workload itself is deterministic; wall-clock values
//! (span durations, `*_ms` metrics) are the only nondeterministic content
//! and are kept out of [`MetricsSnapshot::deterministic_digest`].
//!
//! ## Quickstart
//!
//! ```
//! use obskit::Collector;
//!
//! let obs = Collector::new();
//! {
//!     let _design = obs.span("design");
//!     {
//!         let _hls = obs.span("hls");
//!         obs.inc("hls.ops_scheduled", 42);
//!     }
//!     obs.observe("route.pass_overflow", 3.0);
//! }
//! let rec = obs.finish();
//! assert_eq!(rec.metrics.counters["hls.ops_scheduled"], 42);
//! let trace = obskit::sink::chrome_trace_json(&rec.events);
//! assert!(trace.contains("\"ph\":\"X\""));
//! ```

pub mod clock;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod sink;
pub mod sketch;
pub mod span;

pub use ledger::{read_jsonl, HistSummary, LedgerRead, RunRecord, RUN_SCHEMA};
pub use metrics::{
    is_timing_metric, HistogramSnapshot, MetricsSnapshot, Registry, DEFAULT_BUCKETS,
};
pub use sketch::QuantileSketch;
pub use span::{Collector, ObsRecord, OwnedSpan, SpanEvent, SpanGuard};
