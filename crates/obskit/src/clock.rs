//! Monotonic trace clock and stable per-thread ids.
//!
//! All spans in a process share one epoch (the first call to [`now_us`]),
//! so timestamps from collectors living on different worker threads line up
//! on one timeline in the exported trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide trace epoch. First caller pins it.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the trace epoch (monotonic).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable id for the calling thread (1, 2, 3, … in first-use
/// order). Used as the `tid` of trace events; `std::thread::ThreadId` has
/// no stable integer form.
pub fn thread_tid() -> u64 {
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn tid_is_stable_within_a_thread() {
        assert_eq!(thread_tid(), thread_tid());
        assert!(thread_tid() >= 1);
    }

    #[test]
    fn tids_differ_across_threads() {
        let here = thread_tid();
        let there = std::thread::spawn(thread_tid).join().unwrap();
        assert_ne!(here, there);
    }
}
