//! The append-only run ledger: one structured JSON line per dataset
//! build, training run, or bench run (`runs.jsonl`, schema
//! `obskit.run.v1`).
//!
//! A ledger line answers "what produced this artifact?": which tool and
//! git build, which config digest, which kernels were active, how long
//! each stage took, and the run's metric snapshot (counters, gauges, and
//! histogram summaries). The regression gate (`experiments regress`) and
//! drift tooling read it back; because every map is a `BTreeMap` the
//! serialization is canonical — two identical runs produce byte-identical
//! lines, so ledger content inherits the workspace determinism contract
//! (wall-clock fields excepted, exactly like the metrics registry).

use crate::json;
use crate::metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// The ledger line schema identifier.
pub const RUN_SCHEMA: &str = "obskit.run.v1";

/// One run's ledger record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Producing tool (`hls_congest dataset`, `experiments place-bench`, …).
    pub tool: String,
    /// Run kind: `dataset`, `train`, `bench`, `predict`, ….
    pub kind: String,
    /// Crate version of the producing binary.
    pub version: String,
    /// Git hash the binary was built from (`unknown` outside a repo).
    pub git: String,
    /// Digest of the run's configuration (hex, from `faultkit::fnv1a`).
    pub config_digest: String,
    /// Active kernel selections: `extract`, `place`, `route`, `gbrt`.
    pub kernels: BTreeMap<String, String>,
    /// Per-stage wall-clock totals in milliseconds (nondeterministic).
    pub stages_ms: BTreeMap<String, f64>,
    /// Counter snapshot (deterministic).
    pub counters: BTreeMap<String, u64>,
    /// Gauge snapshot (wall-clocks, final losses, speedups, …).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries as `(count, mean, p50, p90, p99)`.
    pub hists: BTreeMap<String, HistSummary>,
    /// Freeform string metadata (effort, corpus, fingerprint digest, …).
    pub notes: BTreeMap<String, String>,
}

/// A histogram compressed to the summary the ledger keeps.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Sample count.
    pub count: u64,
    /// Mean of observed values.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl RunRecord {
    /// A record for `tool` performing a run of `kind`, stamped with the
    /// caller's version and git hash.
    pub fn new(tool: &str, kind: &str, version: &str, git: &str) -> RunRecord {
        RunRecord {
            tool: tool.to_string(),
            kind: kind.to_string(),
            version: version.to_string(),
            git: git.to_string(),
            ..Default::default()
        }
    }

    /// Record an active kernel selection (`extract`, `place`, `route`,
    /// `gbrt`).
    pub fn kernel(&mut self, which: &str, choice: &str) -> &mut Self {
        self.kernels.insert(which.to_string(), choice.to_string());
        self
    }

    /// Record a freeform note.
    pub fn note(&mut self, key: &str, value: &str) -> &mut Self {
        self.notes.insert(key.to_string(), value.to_string());
        self
    }

    /// Record one stage's wall-clock total.
    pub fn stage_ms(&mut self, stage: &str, ms: f64) -> &mut Self {
        self.stages_ms.insert(stage.to_string(), ms);
        self
    }

    /// Fold a metrics snapshot in: counters and gauges are copied,
    /// histograms are compressed to [`HistSummary`].
    pub fn absorb_metrics(&mut self, snap: &MetricsSnapshot) -> &mut Self {
        for (k, v) in &snap.counters {
            self.counters.insert(k.clone(), *v);
        }
        for (k, v) in &snap.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &snap.histograms {
            self.hists.insert(
                k.clone(),
                HistSummary {
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p90: h.quantile(0.90),
                    p99: h.quantile(0.99),
                },
            );
        }
        self
    }

    /// Serialize as one canonical JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let str_map = |m: &BTreeMap<String, String>| {
            let items: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}:{}", json::string(k), json::string(v)))
                .collect();
            format!("{{{}}}", items.join(","))
        };
        let f64_map = |m: &BTreeMap<String, f64>| {
            let items: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}:{}", json::string(k), json::number(*v)))
                .collect();
            format!("{{{}}}", items.join(","))
        };
        let u64_map = |m: &BTreeMap<String, u64>| {
            let items: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}:{v}", json::string(k)))
                .collect();
            format!("{{{}}}", items.join(","))
        };
        let hist_map = |m: &BTreeMap<String, HistSummary>| {
            let items: Vec<String> = m
                .iter()
                .map(|(k, h)| {
                    format!(
                        "{}:{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        json::string(k),
                        h.count,
                        json::number(h.mean),
                        json::number(h.p50),
                        json::number(h.p90),
                        json::number(h.p99),
                    )
                })
                .collect();
            format!("{{{}}}", items.join(","))
        };
        format!(
            "{{\"schema\":{},\"tool\":{},\"kind\":{},\"version\":{},\"git\":{},\"config_digest\":{},\"kernels\":{},\"stages_ms\":{},\"counters\":{},\"gauges\":{},\"hists\":{},\"notes\":{}}}",
            json::string(RUN_SCHEMA),
            json::string(&self.tool),
            json::string(&self.kind),
            json::string(&self.version),
            json::string(&self.git),
            json::string(&self.config_digest),
            str_map(&self.kernels),
            f64_map(&self.stages_ms),
            u64_map(&self.counters),
            f64_map(&self.gauges),
            hist_map(&self.hists),
            str_map(&self.notes),
        )
    }

    /// Append this record to the ledger at `path` (one line, created on
    /// first use, parent directories included).
    ///
    /// # Errors
    /// Any I/O error opening or writing the file.
    pub fn append_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{}", self.to_json_line())
    }
}

/// A ledger file read back with torn-write tolerance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerRead {
    /// Structurally complete JSON lines, in file order.
    pub lines: Vec<String>,
    /// Lines skipped as torn or corrupt (a killed process can leave at
    /// most one, but the reader tolerates any number). Surface this as a
    /// warning counter — a skipped line is data loss worth noticing, just
    /// not worth failing the whole read over.
    pub skipped: usize,
}

/// Read a JSONL ledger (run ledger, serve journal) tolerantly: lines that
/// are not structurally complete JSON objects — the signature of a torn
/// write from a SIGKILLed process — are counted in
/// [`LedgerRead::skipped`] instead of failing the read. Blank lines are
/// ignored entirely. A missing file reads as empty (crash-only restart
/// semantics: first boot and post-crash boot share one code path).
///
/// # Errors
/// Only genuine I/O errors (permissions, not-a-file); a missing file is
/// **not** an error.
pub fn read_jsonl(path: &Path) -> std::io::Result<LedgerRead> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LedgerRead::default()),
        Err(e) => return Err(e),
    };
    let mut out = LedgerRead::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if is_complete_json_object(line) {
            out.lines.push(line.to_string());
        } else {
            out.skipped += 1;
        }
    }
    // A torn final write can also leave a line without a trailing newline
    // that `lines()` still yields — the structural check above already
    // classifies it, so nothing special is needed here.
    Ok(out)
}

/// Structural completeness check for one ledger line: it must be a single
/// JSON object whose braces balance *outside string literals* and whose
/// final character closes the top-level object. This is not a full parse
/// (obskit stays parser-free); it is exactly strong enough to reject a
/// prefix of a record — which is the only corruption an append-only
/// writer plus SIGKILL can produce.
fn is_complete_json_object(line: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut seen_open = false;
    for (i, c) in line.char_indices() {
        if i == 0 && c != '{' {
            return false;
        }
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                depth += 1;
                seen_open = true;
            }
            '}' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
                // Top level closed before the end: trailing garbage.
                if depth == 0 && i + c.len_utf8() != line.len() {
                    return false;
                }
            }
            _ => {}
        }
    }
    seen_open && depth == 0 && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> RunRecord {
        let mut r = Registry::new();
        r.inc("route.expanded_nodes", 41);
        r.set_gauge("dataset.wall_ms", 12.5);
        r.observe("cv.fold.mae", 17.0);
        let mut rec = RunRecord::new("experiments", "bench", "0.1.0", "abc123");
        rec.config_digest = "deadbeef".to_string();
        rec.kernel("place", "delta").kernel("route", "astar");
        rec.stage_ms("route", 3.25);
        rec.note("effort", "full");
        rec.absorb_metrics(&r.snapshot());
        rec
    }

    #[test]
    fn line_is_canonical_and_balanced() {
        let a = sample().to_json_line();
        let b = sample().to_json_line();
        assert_eq!(a, b, "identical runs produce byte-identical lines");
        assert!(!a.contains('\n'));
        assert!(a.starts_with("{\"schema\":\"obskit.run.v1\""));
        assert!(a.contains("\"place\":\"delta\""));
        assert!(a.contains("\"route.expanded_nodes\":41"));
        assert!(a.contains("\"cv.fold.mae\":{\"count\":1"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn torn_final_record_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("obskit-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.jsonl");
        let _ = std::fs::remove_file(&path);
        sample().append_to(&path).unwrap();
        sample().append_to(&path).unwrap();
        // Simulate a SIGKILL mid-append: a prefix of a third record with no
        // trailing newline.
        let torn = &sample().to_json_line()[..40];
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{torn}").unwrap();
        drop(f);
        let read = read_jsonl(&path).unwrap();
        assert_eq!(read.lines.len(), 2, "complete records survive");
        assert_eq!(read.skipped, 1, "torn trailer is counted, not fatal");
        assert_eq!(read.lines[0], sample().to_json_line());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_jsonl_missing_file_is_empty() {
        let path = std::env::temp_dir().join("obskit-no-such-ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let read = read_jsonl(&path).unwrap();
        assert!(read.lines.is_empty());
        assert_eq!(read.skipped, 0);
    }

    #[test]
    fn completeness_check_handles_strings_and_nesting() {
        assert!(is_complete_json_object(r#"{"a":{"b":"}{"},"c":[1,2]}"#));
        assert!(is_complete_json_object(r#"{"esc":"a\"b{","n":1}"#));
        assert!(!is_complete_json_object(r#"{"a":1"#));
        assert!(!is_complete_json_object(r#"{"a":"unterminated"#));
        assert!(!is_complete_json_object(r#"{"a":1}}"#));
        assert!(!is_complete_json_object(r#"{"a":1}garbage"#));
        assert!(!is_complete_json_object("not json"));
        assert!(!is_complete_json_object("[1,2,3]"));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("obskit-ledger-{}", std::process::id()));
        let path = dir.join("nested/runs.jsonl");
        let _ = std::fs::remove_file(&path);
        sample().append_to(&path).unwrap();
        sample().append_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], lines[1]);
        assert_eq!(lines[0], sample().to_json_line());
        std::fs::remove_dir_all(&dir).ok();
    }
}
