//! Streaming quantile sketches: deterministic, mergeable, and
//! worker-count-invariant, like the metrics registry.
//!
//! The sketch is DDSketch-shaped: values map to logarithmic bins with a
//! fixed relative accuracy, so any quantile estimate is within a bounded
//! *relative* error of the true value while the state stays a few hundred
//! bins regardless of stream length. Unlike the fixed-bucket
//! [`crate::HistogramSnapshot`] (whose bounds must be chosen up front),
//! the sketch adapts to any value range — it is what dataset fingerprints
//! and model-telemetry distributions are built from.
//!
//! ## Determinism contract
//!
//! Bin assignment is a pure function of the value, and [`QuantileSketch::merge`]
//! adds bin counts — a commutative, associative operation on integers. A
//! stream split across N workers, sketched per worker, and merged is
//! therefore **bit-identical** to the single-worker sketch of the same
//! stream in every count, bin, min and max — hence in every quantile.
//! `sum` is a float accumulator, so it follows the same rule as the
//! registry's histogram sums: merge per-unit sketches in input order (the
//! parkit rule) and the full canonical serialization is bit-identical for
//! any worker count, because the summation tree never depends on how many
//! threads did the work.

use crate::json;
use std::collections::BTreeMap;

/// Relative accuracy of the default sketch: quantile estimates are within
/// 1 % of the true value (for values away from zero).
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Values with magnitude below this collapse into the zero bin — they are
/// smaller than any quantity the pipeline measures (percentages, counts,
/// losses, milliseconds).
const MIN_MAGNITUDE: f64 = 1e-12;

/// A mergeable log-binned quantile sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// ln(gamma) where gamma = (1 + alpha) / (1 - alpha); fixed per sketch.
    gamma_ln: f64,
    /// Bins for positive values: key `k` covers `(gamma^(k-1), gamma^k]`.
    pos: BTreeMap<i32, u64>,
    /// Bins for negative values, keyed by the magnitude's bin.
    neg: BTreeMap<i32, u64>,
    /// Count of values with |v| < MIN_MAGNITUDE (including ±0.0).
    zero: u64,
    /// Total observed count.
    count: u64,
    /// Sum of observed values.
    sum: f64,
    /// Smallest observed value (`+inf` when empty).
    min: f64,
    /// Largest observed value (`-inf` when empty).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch with the default relative accuracy.
    pub fn new() -> QuantileSketch {
        Self::with_alpha(DEFAULT_ALPHA)
    }

    /// An empty sketch with relative accuracy `alpha` in (0, 1).
    pub fn with_alpha(alpha: f64) -> QuantileSketch {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch alpha must be in (0, 1), got {alpha}"
        );
        QuantileSketch {
            gamma_ln: ((1.0 + alpha) / (1.0 - alpha)).ln(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Rebuild a sketch from serialized parts (the fingerprint reader's
    /// path). `pos`/`neg` are `(bin, count)` pairs; duplicate keys add.
    pub fn from_parts(
        alpha: f64,
        zero: u64,
        sum: f64,
        min: f64,
        max: f64,
        pos: &[(i32, u64)],
        neg: &[(i32, u64)],
    ) -> QuantileSketch {
        let mut s = Self::with_alpha(alpha);
        s.zero = zero;
        s.sum = sum;
        s.min = if zero + total(pos) + total(neg) == 0 {
            f64::INFINITY
        } else {
            min
        };
        s.max = if zero + total(pos) + total(neg) == 0 {
            f64::NEG_INFINITY
        } else {
            max
        };
        for &(k, c) in pos {
            *s.pos.entry(k).or_insert(0) += c;
        }
        for &(k, c) in neg {
            *s.neg.entry(k).or_insert(0) += c;
        }
        s.count = s.zero + total(pos) + total(neg);
        s
    }

    /// The bin a positive magnitude falls into.
    fn bin_of(&self, magnitude: f64) -> i32 {
        // ceil(ln(v) / ln(gamma)): pure function of the value, so two
        // workers always agree on the bin.
        (magnitude.ln() / self.gamma_ln).ceil() as i32
    }

    /// Representative value of bin `k` (the bin's geometric midpoint).
    fn value_of(&self, k: i32) -> f64 {
        // 2 gamma^k / (gamma + 1) — the midpoint of (gamma^(k-1), gamma^k].
        let gamma = self.gamma_ln.exp();
        2.0 * (self.gamma_ln * k as f64).exp() / (gamma + 1.0)
    }

    /// Record one value. Non-finite values are ignored (they have no JSON
    /// form and no meaningful rank).
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if v.abs() < MIN_MAGNITUDE {
            self.zero += 1;
        } else if v > 0.0 {
            *self.pos.entry(self.bin_of(v)).or_insert(0) += 1;
        } else {
            *self.neg.entry(self.bin_of(-v)).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observed count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated quantile (`q` clamped to [0, 1]); 0 when empty. The
    /// estimate is the representative value of the bin holding the target
    /// rank, clamped to the exact observed [min, max].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        // Ascending value order: negatives from largest magnitude down,
        // then zeros, then positives from smallest magnitude up.
        for (&k, &c) in self.neg.iter().rev() {
            seen += c;
            if seen >= target {
                return (-self.value_of(k)).clamp(self.min, self.max);
            }
        }
        seen += self.zero;
        if seen >= target {
            return 0.0f64.clamp(self.min, self.max);
        }
        for (&k, &c) in self.pos.iter() {
            seen += c;
            if seen >= target {
                return self.value_of(k).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another sketch's bins into this one. Bin counts add, so merge
    /// order cannot change any count; `sum` adds in call order.
    ///
    /// # Panics
    /// Panics when the relative accuracies differ — one metric must always
    /// use one bin layout, or merged sketches would silently lie.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.gamma_ln.to_bits(),
            other.gamma_ln.to_bits(),
            "sketch accuracies differ; use one alpha per metric"
        );
        for (&k, &c) in &other.pos {
            *self.pos.entry(k).or_insert(0) += c;
        }
        for (&k, &c) in &other.neg {
            *self.neg.entry(k).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate the positive bins as `(bin, count)` in ascending bin order.
    pub fn pos_bins(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.pos.iter().map(|(&k, &c)| (k, c))
    }

    /// Iterate the negative bins as `(bin, count)` in ascending bin order.
    pub fn neg_bins(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.neg.iter().map(|(&k, &c)| (k, c))
    }

    /// Count of near-zero values.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// The canonical serialization: a single JSON object with sorted keys
    /// and shortest-round-trip floats. Two bit-identical sketches always
    /// produce byte-identical strings, so this is also the digest input.
    pub fn to_json(&self) -> String {
        let bins = |m: &BTreeMap<i32, u64>| {
            let items: Vec<String> = m.iter().map(|(k, c)| format!("[{k},{c}]")).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            "{{\"alpha\":{},\"count\":{},\"zero\":{},\"sum\":{},\"min\":{},\"max\":{},\"pos\":{},\"neg\":{}}}",
            json::number(self.alpha()),
            self.count,
            self.zero,
            json::number(self.sum),
            json::number(if self.count == 0 { 0.0 } else { self.min }),
            json::number(if self.count == 0 { 0.0 } else { self.max }),
            bins(&self.pos),
            bins(&self.neg),
        )
    }

    /// The relative accuracy this sketch was built with (round-trips
    /// through [`QuantileSketch::from_parts`] exactly enough to reproduce
    /// the same `gamma_ln` for the default alpha).
    pub fn alpha(&self) -> f64 {
        // gamma = e^gamma_ln; alpha = (gamma - 1) / (gamma + 1).
        let gamma = self.gamma_ln.exp();
        (gamma - 1.0) / (gamma + 1.0)
    }

    /// Population-stability index between two sketches over their shared
    /// bin space: `sum((p - q) * ln(p / q))` with epsilon smoothing, the
    /// standard drift score (< 0.1 stable, 0.1–0.25 moderate, > 0.25
    /// major). Returns 0 when either sketch is empty.
    pub fn psi(&self, other: &QuantileSketch) -> f64 {
        if self.count == 0 || other.count == 0 {
            return 0.0;
        }
        let mut keys: Vec<(i8, i32)> = Vec::new();
        for (k, _) in self.neg.iter().chain(other.neg.iter()) {
            keys.push((-1, *k));
        }
        keys.push((0, 0));
        for (k, _) in self.pos.iter().chain(other.pos.iter()) {
            keys.push((1, *k));
        }
        keys.sort_unstable();
        keys.dedup();
        let frac = |s: &QuantileSketch, key: &(i8, i32)| -> f64 {
            let c = match key.0 {
                -1 => s.neg.get(&key.1).copied().unwrap_or(0),
                0 => s.zero,
                _ => s.pos.get(&key.1).copied().unwrap_or(0),
            };
            c as f64 / s.count as f64
        };
        const EPS: f64 = 1e-6;
        let mut psi = 0.0;
        for key in &keys {
            let p = frac(self, key).max(EPS);
            let q = frac(other, key).max(EPS);
            psi += (p - q) * (p / q).ln();
        }
        psi
    }
}

fn total(bins: &[(i32, u64)]) -> u64 {
    bins.iter().map(|&(_, c)| c).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_uniform_stream() {
        let mut s = QuantileSketch::new();
        for i in 1..=1000 {
            s.observe(i as f64);
        }
        assert_eq!(s.count(), 1000);
        for (q, want) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = s.quantile(q);
            assert!(
                (got - want).abs() / want < 0.02,
                "q{q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(1000.0));
    }

    #[test]
    fn handles_zero_negative_and_nonfinite() {
        let mut s = QuantileSketch::new();
        for v in [-10.0, -1.0, 0.0, 0.0, 1.0, 10.0, f64::NAN, f64::INFINITY] {
            s.observe(v);
        }
        assert_eq!(s.count(), 6, "non-finite values are ignored");
        assert_eq!(s.zero_count(), 2);
        assert!(s.quantile(0.0) <= -9.0);
        assert!(s.quantile(1.0) >= 9.0);
        let mid = s.quantile(0.5);
        assert!(
            mid.abs() < 1.1,
            "median of a symmetric stream ~0, got {mid}"
        );
    }

    #[test]
    fn merge_equals_single_stream_bitwise() {
        // Integer-valued floats sum exactly, so even `sum` is invariant
        // under re-chunking here; bins/counts/min/max are invariant for
        // any values (see the module docs for the general contract).
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 997) as f64 - 300.0).collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.observe(v);
        }
        for parts in [2, 3, 7] {
            let mut merged = QuantileSketch::new();
            for chunk in values.chunks(values.len().div_ceil(parts)) {
                let mut s = QuantileSketch::new();
                for &v in chunk {
                    s.observe(v);
                }
                merged.merge(&s);
            }
            assert_eq!(merged, whole, "{parts} partitions");
            assert_eq!(merged.to_json(), whole.to_json());
        }
    }

    #[test]
    fn bins_invariant_under_rechunking_for_arbitrary_floats() {
        let values: Vec<f64> = (0..400).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
        let mut whole = QuantileSketch::new();
        for &v in &values {
            whole.observe(v);
        }
        let mut merged = QuantileSketch::new();
        for chunk in values.chunks(61) {
            let mut s = QuantileSketch::new();
            for &v in chunk {
                s.observe(v);
            }
            merged.merge(&s);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.zero_count(), whole.zero_count());
        assert!(merged.pos_bins().eq(whole.pos_bins()));
        assert!(merged.neg_bins().eq(whole.neg_bins()));
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(merged.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
    }

    #[test]
    fn canonical_json_round_trips_through_from_parts() {
        let mut s = QuantileSketch::new();
        for v in [-3.5, 0.0, 0.25, 7.0, 7.0, 4000.0] {
            s.observe(v);
        }
        let pos: Vec<(i32, u64)> = s.pos_bins().collect();
        let neg: Vec<(i32, u64)> = s.neg_bins().collect();
        let back = QuantileSketch::from_parts(
            DEFAULT_ALPHA,
            s.zero_count(),
            s.sum(),
            s.min().unwrap(),
            s.max().unwrap(),
            &pos,
            &neg,
        );
        assert_eq!(back.to_json(), s.to_json());
        assert_eq!(back.quantile(0.5).to_bits(), s.quantile(0.5).to_bits());
    }

    #[test]
    fn psi_scores_drift_sensibly() {
        let sketch_of = |offset: f64| {
            let mut s = QuantileSketch::new();
            for i in 0..1000 {
                s.observe(offset + (i % 100) as f64);
            }
            s
        };
        let a = sketch_of(0.0);
        let same = sketch_of(0.0);
        let shifted = sketch_of(500.0);
        assert!(a.psi(&same).abs() < 1e-9, "identical populations: psi 0");
        assert!(a.psi(&shifted) > 0.25, "disjoint populations: major drift");
        assert!(a.psi(&QuantileSketch::new()) == 0.0, "empty comparand");
    }

    #[test]
    fn empty_sketch_is_inert() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.to_json().contains("\"count\":0"));
        let mut a = QuantileSketch::new();
        a.observe(1.0);
        let before = a.to_json();
        a.merge(&s);
        assert_eq!(a.to_json(), before, "merging empty changes nothing");
    }

    #[test]
    #[should_panic(expected = "accuracies differ")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::with_alpha(0.01);
        let b = QuantileSketch::with_alpha(0.02);
        a.merge(&b);
    }
}
