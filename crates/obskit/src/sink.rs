//! Export sinks: Chrome trace-event JSON, flat metrics JSON, and a
//! human-readable profile table.

use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::span::{ObsRecord, SpanEvent};
use std::collections::BTreeMap;

/// Serialize spans as a Chrome trace-event file (the JSON Object Format),
/// loadable in `chrome://tracing` and <https://ui.perfetto.dev>. Every
/// span becomes one complete (`"ph": "X"`) event carrying the pinned
/// fields `name`/`ph`/`ts`/`dur`/`pid`/`tid` plus `cat` and `args`.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let mut args = String::from("{");
        for (j, (k, v)) in e.args.iter().enumerate() {
            if j > 0 {
                args.push(',');
            }
            args.push_str(&format!("{}:{}", json::string(k), json::string(v)));
        }
        args.push('}');
        out.push_str(&format!(
            "  {{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}{}\n",
            json::string(&e.name),
            json::string(&e.cat),
            e.ts_us,
            e.dur_us,
            e.tid,
            args,
            if i + 1 < events.len() { "," } else { "" },
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Serialize a metrics snapshot as flat JSON (schema `obskit.metrics.v1`):
/// counters, gauges, and histograms with bucket data plus p50/p90/p99
/// summaries. `meta` key/value pairs (tool name, version, git hash, …)
/// land in a `meta` object so artifacts are attributable to a build.
pub fn metrics_json(snap: &MetricsSnapshot, meta: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"obskit.metrics.v1\",\n");
    out.push_str("  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json::string(k), json::string(v)));
    }
    out.push_str("},\n");

    out.push_str("  \"counters\": {");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json::string(k), v));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"gauges\": {");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {}", json::string(k), json::number(*v)));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"histograms\": {");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bounds: Vec<String> = h.bounds.iter().map(|&b| json::number(b)).collect();
        let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"bounds\": [{}], \"counts\": [{}]}}",
            json::string(k),
            h.count(),
            json::number(h.sum),
            json::number(h.mean()),
            json::number(h.quantile(0.50)),
            json::number(h.quantile(0.90)),
            json::number(h.quantile(0.99)),
            bounds.join(", "),
            counts.join(", "),
        ));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Per-span-name wall-clock aggregate used by the profile table.
#[derive(Debug, Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// Render a finished record as a human-readable profile: spans aggregated
/// by name (count, total/mean/max wall), then counters, then histogram
/// summaries. This is what `--profile` prints.
pub fn profile_table(rec: &ObsRecord) -> String {
    let mut spans: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for e in &rec.events {
        let a = spans.entry(&e.name).or_default();
        a.count += 1;
        a.total_us += e.dur_us;
        a.max_us = a.max_us.max(e.dur_us);
    }
    let mut rows: Vec<(&str, SpanAgg)> = spans.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));

    let ms = |us: u64| us as f64 / 1_000.0;
    let mut out = String::from("profile: spans\n");
    out.push_str(&format!(
        "  {:<28} {:>7} {:>12} {:>12} {:>12}\n",
        "span", "count", "total ms", "mean ms", "max ms"
    ));
    for (name, a) in &rows {
        out.push_str(&format!(
            "  {:<28} {:>7} {:>12.2} {:>12.3} {:>12.2}\n",
            name,
            a.count,
            ms(a.total_us),
            ms(a.total_us) / a.count.max(1) as f64,
            ms(a.max_us),
        ));
    }

    if !rec.metrics.counters.is_empty() {
        out.push_str("profile: counters\n");
        for (k, v) in &rec.metrics.counters {
            out.push_str(&format!("  {k:<40} {v:>14}\n"));
        }
    }
    if !rec.metrics.gauges.is_empty() {
        out.push_str("profile: gauges\n");
        for (k, v) in &rec.metrics.gauges {
            out.push_str(&format!("  {k:<40} {v:>14.3}\n"));
        }
    }
    if !rec.metrics.histograms.is_empty() {
        out.push_str("profile: histograms\n");
        out.push_str(&format!(
            "  {:<32} {:>8} {:>12} {:>10} {:>10} {:>10}\n",
            "metric", "count", "mean", "p50", "p90", "p99"
        ));
        for (k, h) in &rec.metrics.histograms {
            out.push_str(&format!(
                "  {:<32} {:>8} {:>12.3} {:>10.3} {:>10.3} {:>10.3}\n",
                k,
                h.count(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Collector;

    fn sample_record() -> ObsRecord {
        let obs = Collector::new();
        {
            let mut d = obs.span("design");
            d.arg("design", "d0");
            obs.span("hls").end();
            obs.span("route").end();
        }
        obs.inc("route.expanded_nodes", 17);
        obs.observe("route.pass_overflow", 2.0);
        obs.set_gauge("dataset.wall_ms", 1.5);
        obs.finish()
    }

    #[test]
    fn chrome_trace_has_pinned_fields_and_balances() {
        let rec = sample_record();
        let t = chrome_trace_json(&rec.events);
        for field in [
            "\"name\":",
            "\"ph\":\"X\"",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":1",
            "\"tid\":",
        ] {
            assert!(t.contains(field), "missing {field} in {t}");
        }
        assert!(t.contains("\"traceEvents\":["));
        assert!(t.contains("\"args\":{\"design\":\"d0\"}"));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        assert_eq!(t.matches('[').count(), t.matches(']').count());
    }

    #[test]
    fn metrics_json_carries_meta_and_summaries() {
        let rec = sample_record();
        let j = metrics_json(&rec.metrics, &[("tool", "test"), ("version", "0.1.0")]);
        assert!(j.contains("\"schema\": \"obskit.metrics.v1\""));
        assert!(j.contains("\"tool\": \"test\""));
        assert!(j.contains("\"route.expanded_nodes\": 17"));
        assert!(j.contains("\"dataset.wall_ms\": 1.5"));
        assert!(j.contains("\"p99\":"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn profile_table_lists_spans_and_metrics() {
        let rec = sample_record();
        let p = profile_table(&rec);
        assert!(p.contains("design"));
        assert!(p.contains("hls"));
        assert!(p.contains("route.expanded_nodes"));
        assert!(p.contains("route.pass_overflow"));
    }

    #[test]
    fn empty_record_exports_cleanly() {
        let rec = ObsRecord::new();
        let t = chrome_trace_json(&rec.events);
        assert!(t.contains("\"traceEvents\":["));
        let j = metrics_json(&rec.metrics, &[]);
        assert!(j.contains("\"counters\": {"));
        profile_table(&rec);
    }
}
