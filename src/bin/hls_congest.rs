//! `hls-congest` — the command-line face of the congestion-prediction flow.
//!
//! ```text
//! hls-congest compile   <file.mhls>                 print the IR after directives
//! hls-congest synth     <file.mhls>                 HLS report (latency, resources, clock)
//! hls-congest implement <file.mhls> [--router-stats] full flow: congestion map + timing
//!                       [--place-kernel delta|reference]
//! hls-congest dataset   <file.mhls>... -o data.csv [--workers N] [--router-stats]
//!                       [--place-kernel delta|reference]
//!                       [--pipeline-depth N]        cross-stage pipelined executor
//!                       [--extract-kernel soa|reference]
//!                                                   build + save a labelled dataset
//!                                                   (parallel, fault-tolerant, timed)
//!   robustness flags:
//!     --fault-plan <plan.json>    arm a deterministic chaos-testing plan
//!     --max-retries <n>           per-stage retry budget (default 2)
//!     --stage-timeout-ms <ms>     per-attempt wall-clock budget
//!     --checkpoint-dir <dir>      persist per-design verdicts incrementally
//!     --resume                    replay verdicts committed by a prior run
//! hls-congest train     <data.csv> [--model linear|ann|gbrt] [--target v|h|avg]
//!                       [--gbrt-kernel histogram|exact] [--gbrt-bins N]
//!                       [--model-out artifact.json] [--model-version N]
//!                                                   export a servekit model
//!                                                   artifact (GBRT V + H)
//! hls-congest predict   <file.mhls> --data data.csv  hottest source lines + fixes
//!                       [--gbrt-kernel histogram|exact] [--gbrt-bins N]
//! hls-congest serve     [--model artifact.json] [--addr 127.0.0.1:0]
//!                       [--golden data.csv] [--mae-band PP] [--expect-features N]
//!                       [--queue-capacity N] [--serve-workers N] [--deadline-ms MS]
//!                       [--batch-max-rows N] [--batch-max-wait-ms MS]
//!                       [--cache-capacity N] [--frontend event-loop|threads]
//!                       [--journal journal.jsonl] [--fault-plan plan.json]
//!                       [--max-retries N] [--ledger-out runs.jsonl]
//!                                                   run congestd: the crash-only,
//!                                                   load-shedding prediction daemon
//! hls-congest serve-client --addr HOST:PORT
//!                       (--status | --shutdown | --rollback | --swap artifact.json
//!                        | --rows-from data.csv [--limit N] | --source file.mhls)
//!                       [--deadline-ms MS] [--id N]   one request against congestd
//! hls-congest drift     <fp_a.json> <fp_b.json>      compare two dataset
//!                                                   fingerprints (per-feature
//!                                                   PSI + quantile shift;
//!                                                   nonzero exit on drift)
//! hls-congest --version                             crate version + git hash
//! ```
//!
//! The `implement`, `dataset`, `train` and `predict` commands also accept the
//! shared observability flags:
//!
//! ```text
//! --trace-out <trace.json>     Chrome trace-event JSON (chrome://tracing, Perfetto)
//! --metrics-out <metrics.json> flat metrics snapshot (obskit.metrics.v1)
//! --ledger-out <runs.jsonl>    append one obskit.run.v1 record for this run
//! --profile                    per-span wall-clock table on stdout
//! ```
//!
//! `dataset` additionally takes `--fingerprint-out <fp.json>`: a
//! `congest.fingerprint.v1` distribution fingerprint of the built dataset
//! (per-column quantile sketches + matrix digest), consumed by `drift`.

use fpga_hls_congestion::obskit;
use fpga_hls_congestion::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.iter().any(|a| a == "--version") {
        println!("{}", version_string());
        return Ok(());
    }
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "compile" => compile_cmd(rest),
        "synth" => synth_cmd(rest),
        "implement" => implement_cmd(rest),
        "dataset" => dataset_cmd(rest),
        "train" => train_cmd(rest),
        "predict" => predict_cmd(rest),
        "drift" => drift_cmd(rest),
        "serve" => serve_cmd(rest),
        "serve-client" => serve_client_cmd(rest),
        _ => Err(usage()),
    }
}

fn usage() -> Box<dyn std::error::Error> {
    "usage: hls-congest <compile|synth|implement|dataset|train|predict|drift|serve|serve-client> ... (see --help in README)"
        .into()
}

/// Crate version plus the git hash baked in by `build.rs` (absent when the
/// build happened outside a git checkout).
fn version_string() -> String {
    format!(
        "hls-congest {} (git {})",
        env!("CARGO_PKG_VERSION"),
        option_env!("GIT_HASH").unwrap_or("unknown")
    )
}

/// Honour the shared observability flags on a finished record:
/// `--trace-out` (Chrome trace-event JSON), `--metrics-out` (flat metrics
/// snapshot) and `--profile` (per-span table on stdout).
fn emit_observability(
    args: &[String],
    rec: &obskit::ObsRecord,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = flag(args, "--trace-out") {
        std::fs::write(path, obskit::sink::chrome_trace_json(&rec.events))?;
        eprintln!("wrote Chrome trace to {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = flag(args, "--metrics-out") {
        let meta = [
            ("tool", "hls-congest"),
            ("version", env!("CARGO_PKG_VERSION")),
            ("git", option_env!("GIT_HASH").unwrap_or("unknown")),
        ];
        std::fs::write(path, obskit::sink::metrics_json(&rec.metrics, &meta))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if bool_flag(args, "--profile") {
        println!("{}", obskit::sink::profile_table(rec));
    }
    Ok(())
}

/// Honour `--ledger-out`: append one `obskit.run.v1` record for this run —
/// identity stamps, config digest, active kernels, and the run's metric
/// snapshot — then let `extra` add command-specific content (stage
/// timings, model telemetry, fingerprint digests) before the line lands.
fn append_ledger(
    args: &[String],
    kind: &str,
    config_digest: u64,
    kernels: &[(&str, &str)],
    rec: &obskit::ObsRecord,
    extra: impl FnOnce(&mut obskit::RunRecord),
) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = flag(args, "--ledger-out") else {
        return Ok(());
    };
    let mut run_rec = obskit::RunRecord::new(
        "hls-congest",
        kind,
        env!("CARGO_PKG_VERSION"),
        option_env!("GIT_HASH").unwrap_or("unknown"),
    );
    run_rec.config_digest = format!("{config_digest:016x}");
    for (which, choice) in kernels {
        run_rec.kernel(which, choice);
    }
    run_rec.absorb_metrics(&rec.metrics);
    extra(&mut run_rec);
    run_rec.append_to(std::path::Path::new(path))?;
    eprintln!("appended run record to {path}");
    Ok(())
}

fn load_module(path: &str) -> Result<(Module, String), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design")
        .to_string();
    let module = compile_named(&source, &name)?;
    Ok((module, source))
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].as_str())
}

/// Flags that take no value; `positional()` must not swallow the token
/// that follows them.
const BOOL_FLAGS: &[&str] = &[
    "--router-stats",
    "--profile",
    "--version",
    "--resume",
    "--status",
    "--shutdown",
    "--rollback",
];

fn bool_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || (a.starts_with('-') && a.len() == 2) {
            // Value-taking flags consume the next token; boolean flags don't.
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

/// The `--place-kernel` flag, when present.
fn parse_place_kernel(
    args: &[String],
) -> Result<Option<fpga_fabric::PlaceKernel>, Box<dyn std::error::Error>> {
    match flag(args, "--place-kernel") {
        Some(s) => fpga_fabric::PlaceKernel::parse(s)
            .map(Some)
            .ok_or_else(|| format!("unknown --place-kernel `{s}` (delta|reference)").into()),
        None => Ok(None),
    }
}

fn compile_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let files = positional(args);
    let path = files.first().ok_or_else(usage)?;
    let (module, _) = load_module(path)?;
    print!("{}", hls_ir::printer::print_module(&module));
    Ok(())
}

fn synth_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let files = positional(args);
    let path = files.first().ok_or_else(usage)?;
    let (module, _) = load_module(path)?;
    let design = HlsFlow::new(HlsOptions::default()).run(&module)?;
    for fid in design.module.bottom_up_order() {
        let rep = &design.report.functions[&fid];
        println!(
            "{:<24} latency {:>8} cycles | clock est {:>5.2} ns | {:>6} LUT {:>6} FF {:>4} DSP {:>4} BRAM | {} muxes",
            rep.name,
            rep.latency_cycles,
            rep.estimated_clock_ns,
            rep.resources.luts,
            rep.resources.ffs,
            rep.resources.dsps,
            rep.resources.brams,
            rep.mux.count
        );
    }
    println!(
        "netlist: {} cells, {} nets",
        design.rtl.cells.len(),
        design.rtl.nets.len()
    );
    Ok(())
}

fn implement_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let files = positional(args);
    let path = files.first().ok_or_else(usage)?;
    let (module, _) = load_module(path)?;
    let mut flow = CongestionFlow::new();
    if let Some(k) = parse_place_kernel(args)? {
        flow.par.placer.kernel = k;
    }
    let obs = Collector::new();
    let (design, result) = flow.implement_observed(&module, &obs)?;
    println!(
        "latency {} cycles | WNS {:.2} ns | Fmax {:.1} MHz",
        design.report.latency_cycles(),
        result.timing.wns_ns,
        result.timing.fmax_mhz
    );
    println!(
        "congestion: max (V, H) = ({:.1}%, {:.1}%), {} tiles over 100%",
        result.congestion.max_vertical(),
        result.congestion.max_horizontal(),
        result.congestion.tiles_over(100.0)
    );
    println!(
        "\nutilization:\n{}",
        fpga_fabric::UtilizationReport::new(&design.rtl, &flow.device)
    );
    if bool_flag(args, "--router-stats") {
        println!(
            "placer ({}): {}",
            flow.par.placer.kernel.name(),
            result.placement.stats
        );
        println!("router: {}", result.route.stats);
        println!(
            "routing utilization:\n{}",
            fpga_fabric::RoutingUtilization::new(&result.route, &flow.device)
        );
    }
    println!(
        "vertical congestion map:\n{}",
        result.congestion.render(true)
    );
    emit_observability(args, &obs.finish())
}

/// `serve` — run `congestd`. Binds the address (port 0 picks a free
/// port), prints one `congestd listening on ...` line once bound, then
/// serves until a `shutdown` request arrives. Every flag maps onto
/// [`servekit::ServeConfig`]; `--golden` + `--mae-band` configure the
/// hot-swap validation gate, `--journal` enables crash-only recovery,
/// and `--fault-plan` arms chaos injection at the `serve.*` stages.
fn serve_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use fpga_hls_congestion::servekit::{
        self, GoldenBatch, LedgerSink, ModelArtifact, ServeConfig,
    };
    let mut cfg = ServeConfig::default();
    cfg.gate.expected_features = congestion_core::features::FEATURE_COUNT;
    if let Some(n) = flag(args, "--expect-features") {
        cfg.gate.expected_features = n.parse()?;
    }
    cfg.gate.mae_band = match flag(args, "--mae-band") {
        Some(s) => s.parse()?,
        None => 25.0,
    };
    if let Some(path) = flag(args, "--golden") {
        let ds = congestion_core::persist::load(path)?;
        let rows: Vec<Vec<f64>> = (0..ds.len()).map(|i| ds.features_of(i).to_vec()).collect();
        let v: Vec<f64> = ds.samples.iter().map(|s| s.vertical).collect();
        let h: Vec<f64> = ds.samples.iter().map(|s| s.horizontal).collect();
        cfg.gate.golden = Some(GoldenBatch::new(rows, v, h, 512));
        eprintln!(
            "gate: golden batch of {} rows from {path}",
            ds.len().min(512)
        );
    }
    if let Some(n) = flag(args, "--queue-capacity") {
        cfg.queue_capacity = n.parse()?;
    }
    if let Some(n) = flag(args, "--serve-workers") {
        cfg.workers = n.parse()?;
    }
    if let Some(ms) = flag(args, "--deadline-ms") {
        cfg.default_deadline = Some(std::time::Duration::from_millis(ms.parse()?));
    }
    if let Some(n) = flag(args, "--batch-max-rows") {
        cfg.batch_max_rows = n.parse()?;
    }
    if let Some(ms) = flag(args, "--batch-max-wait-ms") {
        cfg.batch_max_wait = std::time::Duration::from_millis(ms.parse()?);
    }
    if let Some(n) = flag(args, "--cache-capacity") {
        cfg.cache_capacity = n.parse()?;
    }
    // The feature cache keys on the core source digest (stamped with the
    // feature schema + extract kernel), not the servekit default FNV.
    cfg.cache_key = Some(std::sync::Arc::new(|name: &str, text: &str| {
        congestion_core::source_digest(name, text)
    }));
    if let Some(path) = flag(args, "--journal") {
        cfg.journal_path = Some(path.into());
    }
    if let Some(path) = flag(args, "--fault-plan") {
        let text = std::fs::read_to_string(path)?;
        let plan = fpga_hls_congestion::faultkit::FaultPlan::from_json(&text)?;
        eprintln!("armed fault plan {path} (seed {})", plan.seed);
        cfg.plan = Some(std::sync::Arc::new(plan));
    }
    if let Some(n) = flag(args, "--max-retries") {
        cfg.policy.max_retries = n.parse()?;
    }
    if let Some(ms) = flag(args, "--stage-timeout-ms") {
        cfg.policy.stage_timeout = Some(std::time::Duration::from_millis(ms.parse()?));
    }
    if let Some(path) = flag(args, "--ledger-out") {
        cfg.ledger = Some(LedgerSink {
            path: path.into(),
            tool: "congestd".into(),
            version: env!("CARGO_PKG_VERSION").into(),
            git: option_env!("GIT_HASH").unwrap_or("unknown").into(),
        });
    }
    let initial = match flag(args, "--model") {
        Some(path) => Some(
            ModelArtifact::load(std::path::Path::new(path))
                .map_err(|e| format!("--model {path}: {e}"))?,
        ),
        None => None,
    };
    // The MiniHLS front-end for `source` requests: compile + synthesize +
    // extract, all inside the supervised serve.extract stage.
    let extractor: std::sync::Arc<servekit::SourceExtractor> =
        std::sync::Arc::new(|name: &str, text: &str| {
            let module = compile_named(text, name).map_err(|e| e.to_string())?;
            let flow = CongestionFlow::new();
            let design = flow.synthesize(&module).map_err(|e| e.to_string())?;
            Ok(congestion_core::extract_feature_rows(&design, &flow.device))
        });
    let (server, report) = servekit::Server::start(cfg, initial, Some(extractor))?;
    if let Some(e) = &report.install_error {
        eprintln!("warning: initial model rejected ({e}); serving degraded");
    }
    if report.recovered.records > 0 {
        eprintln!(
            "recovered journal: model {}, {} lost in flight, {} torn line(s){}",
            report.recovered.last_model.as_deref().unwrap_or("analytic"),
            report.recovered.lost_in_flight,
            report.recovered.torn_lines,
            if report.recovered.clean_shutdown {
                " (clean shutdown)"
            } else {
                ""
            }
        );
    }
    let server = std::sync::Arc::new(server);
    let addr = flag(args, "--addr").unwrap_or("127.0.0.1:0");
    let model_name = server.active_model();
    let frontend = flag(args, "--frontend").unwrap_or("event-loop");
    let on_bound = |bound: std::net::SocketAddr| {
        // One parseable line for scripts/CI to scrape the bound port from.
        println!("congestd listening on {bound} (model {model_name})");
    };
    match frontend {
        "event-loop" => servekit::serve_event_loop(server.clone(), addr, on_bound)?,
        "threads" => servekit::serve_tcp(server.clone(), addr, on_bound)?,
        other => return Err(format!("--frontend {other}: expected event-loop or threads").into()),
    }
    let summary = server.shutdown();
    println!(
        "served {} requests ({} shed, {} degraded, {} deadline-missed, {} errors); swaps {}, rejects {}, rollbacks {}; model {}",
        summary.metrics.completed,
        summary.metrics.shed,
        summary.metrics.degraded,
        summary.metrics.deadline_missed,
        summary.metrics.errors,
        summary.swaps,
        summary.rejects,
        summary.rollbacks,
        summary.model,
    );
    println!(
        "coalescing: {} batches ({} requests, {} rows); cache: {} hits / {} lookups ({} evicted, {} invalidated)",
        summary.metrics.batches,
        summary.metrics.coalesced,
        summary.metrics.batch_rows,
        summary.cache.hits,
        summary.cache.lookups,
        summary.cache.evictions,
        summary.cache.invalidations,
    );
    if let Some(path) = flag(args, "--metrics-out") {
        let meta = [
            ("tool", "congestd"),
            ("version", env!("CARGO_PKG_VERSION")),
            ("git", option_env!("GIT_HASH").unwrap_or("unknown")),
        ];
        std::fs::write(path, obskit::sink::metrics_json(&server.metrics(), &meta))?;
        eprintln!("wrote serve metrics snapshot to {path}");
    }
    Ok(())
}

/// `serve-client` — one request against a running `congestd`, reply JSON
/// on stdout. Exits nonzero only for transport failures and `error`
/// replies; `overloaded` / `degraded` / `deadline_exceeded` are valid
/// service answers and exit 0.
fn serve_client_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use fpga_hls_congestion::servekit::{self, ReplyStatus, Request, RequestBody};
    let addr = flag(args, "--addr").ok_or("serve-client needs --addr HOST:PORT")?;
    let id = match flag(args, "--id") {
        Some(s) => s.parse()?,
        None => 1,
    };
    let body = if bool_flag(args, "--status") {
        RequestBody::Status
    } else if bool_flag(args, "--shutdown") {
        RequestBody::Shutdown
    } else if bool_flag(args, "--rollback") {
        RequestBody::Rollback
    } else if let Some(path) = flag(args, "--swap") {
        RequestBody::Swap { path: path.into() }
    } else if let Some(path) = flag(args, "--rows-from") {
        let ds = congestion_core::persist::load(path)?;
        let limit = match flag(args, "--limit") {
            Some(s) => s.parse()?,
            None => ds.len(),
        };
        let rows = (0..ds.len().min(limit))
            .map(|i| ds.features_of(i).to_vec())
            .collect();
        RequestBody::Predict { rows }
    } else if let Some(path) = flag(args, "--source") {
        let text = std::fs::read_to_string(path)?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("design")
            .to_string();
        RequestBody::Source { name, text }
    } else {
        return Err(
            "serve-client needs one of --status --shutdown --rollback --swap --rows-from --source"
                .into(),
        );
    };
    let req = Request {
        id,
        deadline_ms: flag(args, "--deadline-ms").map(str::parse).transpose()?,
        body,
    };
    let reply = servekit::request(addr, &req)?;
    println!("{}", reply.to_json());
    if reply.status == ReplyStatus::Error {
        return Err(reply
            .error
            .unwrap_or_else(|| "server returned an error reply".into())
            .into());
    }
    Ok(())
}

fn dataset_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let out = flag(args, "-o")
        .or(flag(args, "--out"))
        .unwrap_or("dataset.csv");
    let files = positional(args);
    if files.is_empty() {
        return Err(usage());
    }
    let mut flow = CongestionFlow::new();
    if let Some(k) = parse_place_kernel(args)? {
        flow.par.placer.kernel = k;
    }
    if let Some(w) = flag(args, "--workers") {
        flow = flow.with_workers(w.parse()?);
    }
    if let Some(d) = flag(args, "--pipeline-depth") {
        flow = flow.with_pipeline_depth(d.parse()?);
    }
    if let Some(k) = flag(args, "--extract-kernel") {
        let kernel = congestion_core::features::ExtractKernel::parse(k)
            .ok_or_else(|| format!("bad --extract-kernel `{k}` (expected soa|reference)"))?;
        flow = flow.with_extract_kernel(kernel);
    }
    if let Some(path) = flag(args, "--fault-plan") {
        let text = std::fs::read_to_string(path)?;
        let plan = fpga_hls_congestion::faultkit::FaultPlan::from_json(&text)?;
        eprintln!("armed fault plan {path} (seed {})", plan.seed);
        flow = flow.with_fault_plan(plan);
    }
    if let Some(n) = flag(args, "--max-retries") {
        flow.supervision.max_retries = n.parse()?;
    }
    if let Some(ms) = flag(args, "--stage-timeout-ms") {
        flow.supervision.stage_timeout = Some(std::time::Duration::from_millis(ms.parse()?));
    }
    if let Some(dir) = flag(args, "--checkpoint-dir") {
        flow = flow.with_checkpoint(dir, bool_flag(args, "--resume"));
    } else if bool_flag(args, "--resume") {
        return Err("--resume needs --checkpoint-dir <dir>".into());
    }
    let mut modules = Vec::new();
    for f in &files {
        modules.push(load_module(f)?.0);
    }
    // Supervised build: designs run on parallel workers; panics, injected
    // faults, and timeouts degrade into the per-design failure taxonomy
    // reported below without sinking the rest of the batch.
    let report = flow.build_dataset_report(&modules);
    print!("{}", report.render());
    if bool_flag(args, "--router-stats") {
        for d in &report.designs {
            println!("  {:<24} router: {}", d.name, d.route_stats);
        }
        println!("  total router: {}", report.route_stats_totals());
    }
    for d in &report.designs {
        if let Err(e) = &d.outcome {
            eprintln!("warning: design `{}` failed: {e}", d.name);
        }
    }
    if report.succeeded() == 0 {
        return Err("no design produced samples".into());
    }
    let ds = &report.dataset;
    congestion_core::persist::save(ds, out)?;
    println!(
        "{}",
        congestion_core::stats::dataset_stats(ds, Target::Average)
    );
    println!("wrote {} samples to {out}", ds.len());
    // Distribution fingerprint: per-column quantile sketches + matrix
    // digest, byte-identical for any worker count. `drift` compares two.
    let fingerprint =
        if flag(args, "--fingerprint-out").is_some() || flag(args, "--ledger-out").is_some() {
            Some(ds.fingerprint())
        } else {
            None
        };
    if let (Some(path), Some(fp)) = (flag(args, "--fingerprint-out"), &fingerprint) {
        std::fs::write(path, fp.to_json())?;
        eprintln!("wrote dataset fingerprint to {path}");
    }
    let totals = report.stage_totals();
    append_ledger(
        args,
        "dataset",
        flow.config_digest(),
        &[
            ("extract", flow.extract.name()),
            ("place", flow.par.placer.kernel.name()),
            ("route", flow.par.router.kernel.name()),
        ],
        &report.obs,
        |rec| {
            for (stage, d) in [
                ("hls", totals.hls),
                ("place", totals.place),
                ("route", totals.route),
                ("congestion", totals.congestion),
                ("timing", totals.timing),
                ("features", totals.features),
            ] {
                rec.stage_ms(stage, d.as_secs_f64() * 1e3);
            }
            rec.stage_ms("total", report.wall.as_secs_f64() * 1e3);
            rec.note("designs", &report.designs.len().to_string());
            rec.note("succeeded", &report.succeeded().to_string());
            rec.note("samples", &report.dataset.len().to_string());
            rec.note("workers", &report.workers.to_string());
            if let Some(fp) = &fingerprint {
                rec.note("fingerprint", &fp.matrix_digest);
            }
        },
    )?;
    emit_observability(args, &report.obs)
}

fn parse_model(s: Option<&str>) -> Result<ModelKind, Box<dyn std::error::Error>> {
    Ok(match s.unwrap_or("gbrt") {
        "linear" => ModelKind::Linear,
        "ann" => ModelKind::Ann,
        "gbrt" => ModelKind::Gbrt,
        other => return Err(format!("unknown model `{other}`").into()),
    })
}

fn parse_target(s: Option<&str>) -> Result<Target, Box<dyn std::error::Error>> {
    Ok(match s.unwrap_or("v") {
        "v" | "vertical" => Target::Vertical,
        "h" | "horizontal" => Target::Horizontal,
        "avg" | "average" => Target::Average,
        other => return Err(format!("unknown target `{other}`").into()),
    })
}

/// [`TrainOptions`] with the GBRT kernel flags (`--gbrt-kernel`,
/// `--gbrt-bins`) applied.
fn parse_train_options(args: &[String]) -> Result<TrainOptions, Box<dyn std::error::Error>> {
    let mut opts = TrainOptions::default();
    if let Some(s) = flag(args, "--gbrt-kernel") {
        opts.gbrt_kernel = fpga_hls_congestion::mlkit::GbrtKernel::parse(s)
            .ok_or_else(|| format!("unknown --gbrt-kernel `{s}` (histogram|exact)"))?;
    }
    if let Some(s) = flag(args, "--gbrt-bins") {
        opts.gbrt_bins = s
            .parse()
            .map_err(|_| format!("--gbrt-bins takes a bin count, got `{s}`"))?;
    }
    Ok(opts)
}

fn train_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let files = positional(args);
    let path = files.first().ok_or_else(usage)?;
    let kind = parse_model(flag(args, "--model"))?;
    let target = parse_target(flag(args, "--target"))?;
    let ds = congestion_core::persist::load(path)?;
    let filtered = filter_marginal(&ds, &FilterOptions::default());
    println!(
        "{} samples ({} marginal filtered)",
        filtered.kept.len(),
        filtered.removed
    );
    let (train, test) = filtered.kept.split(0.2, 42);
    let obs = Collector::new();
    let opts = parse_train_options(args)?;
    let model = CongestionPredictor::train_observed(kind, target, &train, &opts, &obs);
    let acc = model.evaluate(&test);
    println!(
        "{} on {}: MAE {:.2}%, MedAE {:.2}% (held-out 20%)",
        kind.name(),
        target.name(),
        acc.mae,
        acc.medae
    );
    let rec = obs.finish();
    // Ledger: model identity + held-out accuracy + telemetry (split-gain
    // importance, prediction/residual sketches) under one run record.
    let config = format!(
        "{}|{}|{:?}|{}|{}",
        kind.name(),
        target.name(),
        opts.gbrt_kernel,
        opts.gbrt_bins,
        path
    );
    append_ledger(
        args,
        "train",
        fpga_hls_congestion::faultkit::fnv1a(&[b"hls-congest-train-v1", config.as_bytes()]),
        &[("gbrt", opts.gbrt_kernel.name())],
        &rec,
        |run_rec| {
            run_rec.note("model", kind.name());
            run_rec.note("target", target.name());
            run_rec.gauges.insert("eval.mae".to_string(), acc.mae);
            run_rec.gauges.insert("eval.medae".to_string(), acc.medae);
            let names = congestion_core::features::feature_names();
            model.telemetry(&test).record(run_rec, Some(&names), 10);
        },
    )?;
    if let Some(out) = flag(args, "--model-out") {
        export_model_artifact(args, &train, path, out)?;
    }
    emit_observability(args, &rec)
}

/// `train --model-out`: fit GBRT ensembles for *both* congestion targets
/// and write them as one versioned `servekit.model.v1` artifact — the unit
/// `congestd` loads, gates, and hot-swaps.
fn export_model_artifact(
    args: &[String],
    train: &congestion_core::CongestionDataset,
    data_path: &str,
    out: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    use fpga_hls_congestion::servekit::ModelArtifact;
    let opts = parse_train_options(args)?;
    let version = match flag(args, "--model-version") {
        Some(s) => s
            .parse()
            .map_err(|_| format!("--model-version takes an integer, got `{s}`"))?,
        None => 1,
    };
    let fit = |target| {
        let p = CongestionPredictor::train(ModelKind::Gbrt, target, train, &opts);
        p.compiled_ensemble()
            .cloned()
            .ok_or("GBRT predictor produced no compiled ensemble")
    };
    let artifact = ModelArtifact {
        name: "gbrt".into(),
        version,
        feature_count: congestion_core::features::FEATURE_COUNT,
        trained_on: data_path.to_string(),
        vertical: fit(Target::Vertical)?,
        horizontal: fit(Target::Horizontal)?,
    };
    artifact.save(std::path::Path::new(out))?;
    println!(
        "wrote model artifact {} to {out} (digest {:016x})",
        artifact.display_name(),
        artifact.digest()
    );
    Ok(())
}

/// Compare two dataset fingerprints written by `dataset --fingerprint-out`.
/// Prints the per-feature drift table; exits nonzero when any feature's
/// population-stability index crosses the major-drift threshold.
fn drift_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let files = positional(args);
    let [a, b] = files.as_slice() else {
        return Err("drift needs exactly two fingerprint files".into());
    };
    let load =
        |path: &str| -> Result<congestion_core::DatasetFingerprint, Box<dyn std::error::Error>> {
            let text = std::fs::read_to_string(path)?;
            congestion_core::DatasetFingerprint::from_json(&text)
                .map_err(|e| format!("{path}: {e}").into())
        };
    let fa = load(a)?;
    let fb = load(b)?;
    let report = congestion_core::drift(&fa, &fb)?;
    println!("{}", report.render(10));
    if report.severe() {
        return Err(format!(
            "severe distribution drift: {} feature(s) over the PSI threshold",
            report.drifted
        )
        .into());
    }
    Ok(())
}

fn predict_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let files = positional(args);
    let path = files.first().ok_or_else(usage)?;
    let data = flag(args, "--data").ok_or("predict needs --data <dataset.csv>")?;
    let (module, source) = load_module(path)?;
    let ds = congestion_core::persist::load(data)?;
    let filtered = filter_marginal(&ds, &FilterOptions::default());
    let obs = Collector::new();
    let model = CongestionPredictor::train_observed(
        ModelKind::Gbrt,
        Target::Average,
        &filtered.kept,
        &parse_train_options(args)?,
        &obs,
    );
    let flow = CongestionFlow::new();
    let design = {
        let _span = obs.span("hls");
        flow.synthesize(&module)?
    };
    let predictions = model.predict_design(&design, &flow.device);
    let regions = locate_congested(&design.module, &predictions);
    println!("{}", render_report(&regions, Some(&source), 10));
    let suggestions = suggest_fixes(&design.module, &predictions, &ResolveOptions::default());
    if suggestions.is_empty() {
        println!("no fixes suggested (no hot regions above threshold)");
    } else {
        println!("suggested fixes:");
        for s in suggestions {
            println!("  - {s:?}");
        }
    }
    emit_observability(args, &obs.finish())
}
