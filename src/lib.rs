//! # fpga-hls-congestion
//!
//! A full reproduction of *Zhao, Liang, Sinha, Zhang — "Machine Learning
//! Based Routing Congestion Prediction in FPGA High-Level Synthesis"
//! (DATE 2019)* as a Rust workspace, including every substrate the paper
//! depends on:
//!
//! * [`hls_ir`] — HLS IR, the MiniHLS C-like frontend, directive transforms;
//! * [`hls_synth`] — scheduling, binding, RTL netlist generation, reports;
//! * [`fpga_fabric`] — device model, placement, routing, congestion, timing;
//! * [`mlkit`] — Lasso / MLP / GBRT regressors, CV, metrics;
//! * [`rosetta_gen`] — the six synthetic Rosetta-style benchmarks;
//! * [`congestion_core`] — the paper's contribution: back-tracing, the 302
//!   features, marginal filtering, prediction, source-level localization and
//!   congestion resolution;
//! * [`servekit`] — `congestd`, the crash-only, load-shedding prediction
//!   service: hot-swap model registry, bounded admission, degradation
//!   ladder, crash-recovery journal.
//!
//! This facade crate re-exports all of them and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use fpga_hls_congestion::prelude::*;
//!
//! // Training phase: run the benchmark suite through HLS + simulated PAR.
//! let flow = CongestionFlow::new();
//! let modules: Vec<_> = rosetta_gen::suite::groups(rosetta_gen::Preset::Optimized)
//!     .into_iter()
//!     .map(|b| b.build())
//!     .collect::<Result<_, _>>()?;
//! let dataset = flow.build_dataset(&modules)?;
//!
//! // Filter marginal unroll replicas and train the paper's best model.
//! let filtered = filter_marginal(&dataset, &Default::default());
//! let (train, test) = filtered.kept.split(0.2, 42);
//! let model = CongestionPredictor::train(
//!     ModelKind::Gbrt,
//!     Target::Vertical,
//!     &train,
//!     &Default::default(),
//! );
//! println!("MAE = {:.2}%", model.evaluate(&test).mae);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use congestion_core;
pub use faultkit;
pub use fpga_fabric;
pub use hls_ir;
pub use hls_synth;
pub use mlkit;
pub use obskit;
pub use rosetta_gen;
pub use servekit;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use congestion_core::filter::{filter_marginal, FilterOptions};
    pub use congestion_core::locate::{locate_congested, render_report};
    pub use congestion_core::pipeline::CongestionFlow;
    pub use congestion_core::predict::TrainOptions;
    pub use congestion_core::resolve::{suggest_fixes, ResolveOptions, Suggestion};
    pub use congestion_core::{CongestionPredictor, DesignFailure, ModelKind, Target};
    pub use faultkit::{FaultKind, FaultPlan, FaultRule, SupervisorPolicy};
    pub use fpga_fabric::{Device, ImplResult};
    pub use hls_ir::frontend::{compile, compile_named, compile_with_directives};
    pub use hls_ir::{Directives, Module, Partition};
    pub use hls_synth::{HlsFlow, HlsOptions};
    pub use obskit::{Collector, ObsRecord};
}
