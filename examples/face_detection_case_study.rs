//! The paper's §IV-C case study, end to end: train a model, predict the
//! congested source lines of the optimized Face Detection design *without*
//! implementing it, apply the advisor's fixes (un-inline, replicate), and
//! verify with the full flow that congestion actually fell.
//!
//! ```sh
//! cargo run --release --example face_detection_case_study
//! ```

use fpga_hls_congestion::prelude::*;
use rosetta_gen::face_detection::{self, FdVariant};
use rosetta_gen::{suite, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = CongestionFlow::new();

    // Train on the other two suite groups so Face Detection is unseen.
    let training: Vec<Module> = [
        suite::digit_spam_group(Preset::Optimized),
        suite::bnn_render_flow_group(Preset::Optimized),
    ]
    .into_iter()
    .map(|b| b.build())
    .collect::<Result<_, _>>()?;
    println!("building training dataset from 2 suite groups...");
    let dataset = flow.build_dataset(&training)?;
    let filtered = filter_marginal(&dataset, &FilterOptions::default());
    let model = CongestionPredictor::train(
        ModelKind::Gbrt,
        Target::Average,
        &filtered.kept,
        &TrainOptions::default(),
    );

    // Prediction phase: HLS only on the congested baseline.
    let bench = face_detection::benchmark(FdVariant::Optimized);
    let module = bench.build()?;
    let design = flow.synthesize(&module)?;
    let predictions = model.predict_design(&design, &flow.device);

    // Locate the hottest source lines.
    let regions = locate_congested(&design.module, &predictions);
    println!("\npredicted congestion hot spots:");
    println!("{}", render_report(&regions, Some(&bench.source), 5));

    // Ask the advisor for fixes. The model was trained on other designs, so
    // its absolute scale is conservative; flag the top of *this* design's
    // predicted range as hot.
    let max_pred = predictions
        .iter()
        .map(|p| p.predicted)
        .fold(0.0f64, f64::max);
    let opts = ResolveOptions {
        hot_threshold: max_pred * 0.85,
        ..ResolveOptions::default()
    };
    let suggestions = suggest_fixes(&design.module, &predictions, &opts);
    println!("advisor suggestions:");
    for s in &suggestions {
        match s {
            Suggestion::RemoveInline { function } => {
                println!("  - remove inlining of `{function}` (paper step 1)");
            }
            Suggestion::ReplicateArray {
                function,
                array,
                readers,
            } => println!(
                "  - replicate `{array}` in `{function}` ({readers} readers, paper step 2)"
            ),
            Suggestion::PartitionArray {
                function,
                array,
                accessors,
            } => println!("  - partition `{array}` in `{function}` ({accessors} accessors)"),
        }
    }

    // Apply the paper's two steps and verify with the full flow.
    println!("\nverifying with full place-and-route:");
    for variant in [
        FdVariant::Optimized,
        FdVariant::NoInline,
        FdVariant::Replicated,
    ] {
        let m = face_detection::benchmark(variant).build()?;
        let (d, r) = flow.implement(&m)?;
        println!(
            "  {:<26} max cong (V, H) = ({:>6.1}%, {:>6.1}%)  congested CLBs = {:>4}  Fmax = {:>5.1} MHz  latency = {}",
            format!("{variant:?}"),
            r.congestion.max_vertical(),
            r.congestion.max_horizontal(),
            r.congestion.tiles_over(100.0),
            r.timing.fmax_mhz,
            d.report.latency_cycles()
        );
    }
    Ok(())
}
