//! Bring your own kernel: write MiniHLS source with HLS pragmas, synthesize
//! it, inspect the HLS report, and implement it on the simulated device —
//! the substrate tour for users who want the flow without the ML.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use fpga_hls_congestion::prelude::*;
use hls_ir::printer::print_module;

const SOURCE: &str = r#"
// A 3x3 convolution over a 16x16 tile, written in MiniHLS.
int32 conv3x3(int16 img[256], int16 kern[9]) {
    #pragma HLS array_partition variable=kern complete
    int32 acc = 0;
    for (y = 1; y < 15; y++) {
        #pragma HLS unroll factor=2
        for (x = 1; x < 15; x++) {
            int32 base = y * 16 + x;
            int32 s = 0;
            s = s + img[base - 17] * kern[0] + img[base - 16] * kern[1] + img[base - 15] * kern[2];
            s = s + img[base - 1]  * kern[3] + img[base]      * kern[4] + img[base + 1]  * kern[5];
            s = s + img[base + 15] * kern[6] + img[base + 16] * kern[7] + img[base + 17] * kern[8];
            acc = acc + (s >> 4);
        }
    }
    return acc;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile MiniHLS -> IR (pragmas applied: inlining, unrolling,
    // partitioning all happen here).
    let module = compile_named(SOURCE, "conv3x3_demo")?;
    println!("=== IR after directives ===");
    let text = print_module(&module);
    for line in text.lines().take(25) {
        println!("{line}");
    }
    println!("... ({} ops total)\n", module.total_ops());

    // HLS: schedule, bind, generate the RTL netlist.
    let design = HlsFlow::new(HlsOptions::default()).run(&module)?;
    let top = design.report.top_report();
    println!("=== HLS report ===");
    println!("latency        : {} cycles", top.latency_cycles);
    println!("estimated clock: {:.2} ns", top.estimated_clock_ns);
    println!(
        "resources      : {} LUT, {} FF, {} DSP, {} BRAM",
        top.resources.luts, top.resources.ffs, top.resources.dsps, top.resources.brams
    );
    println!(
        "memories       : {} words in {} banks",
        top.memory.words, top.memory.banks
    );
    println!(
        "netlist        : {} cells, {} nets\n",
        design.rtl.cells.len(),
        design.rtl.nets.len()
    );

    // Implementation: place, route, congestion, timing.
    let flow = CongestionFlow::new();
    let result = fpga_fabric::par::run_par(&design, &flow.device, &flow.par);
    println!("=== Implementation ===");
    println!(
        "WNS {:.2} ns | Fmax {:.1} MHz | max congestion (V, H) = ({:.1}%, {:.1}%) | {} tiles > 100%",
        result.timing.wns_ns,
        result.timing.fmax_mhz,
        result.congestion.max_vertical(),
        result.congestion.max_horizontal(),
        result.congestion.tiles_over(100.0)
    );
    println!("\nvertical congestion map:");
    // Print a down-sampled view (every 4th row) to keep the output short.
    for (i, row) in result.congestion.render(true).lines().enumerate() {
        if i % 4 == 0 {
            println!("{row}");
        }
    }
    Ok(())
}
