//! Design-space exploration with predicted congestion: sweep unroll factors
//! and partition schemes of a dot-product kernel and compare the *predicted*
//! congestion of each point against the *measured* (post-PAR) value — the
//! workflow the paper enables ("guide the optimization and shorten the
//! design cycle").
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use fpga_hls_congestion::prelude::*;
use rosetta_gen::{suite, Preset};

const KERNEL: &str = r#"
int32 dot(int32 a[64], int32 b[64]) {
    int32 acc = 0;
    for (i = 0; i < 64; i++) {
        acc = acc + a[i] * b[i];
    }
    return acc;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = CongestionFlow::new();

    // Train once on the benchmark suite.
    let training: Vec<Module> = suite::groups(Preset::Optimized)
        .into_iter()
        .map(|b| b.build())
        .collect::<Result<_, _>>()?;
    println!("training congestion model on the suite...");
    let dataset = flow.build_dataset(&training)?;
    let filtered = filter_marginal(&dataset, &FilterOptions::default());
    let model = CongestionPredictor::train(
        ModelKind::Gbrt,
        Target::Average,
        &filtered.kept,
        &TrainOptions::default(),
    );

    println!(
        "\n{:<28} {:>10} {:>12} {:>12} {:>10}",
        "design point", "latency", "pred max %", "actual max %", "Fmax MHz"
    );
    for (label, unroll, partition) in [
        ("rolled, no partition", 1u32, 1u32),
        ("unroll 8, cyclic 8", 8, 8),
        ("unroll 16, cyclic 16", 16, 16),
        ("unroll 64, complete", 64, 64),
    ] {
        let mut d = Directives::new();
        if unroll > 1 {
            d.set_unroll("dot/loop0", unroll);
        }
        if partition > 1 {
            let p = if partition >= 64 {
                Partition::Complete
            } else {
                Partition::Cyclic(partition)
            };
            d.set_partition("dot/a", p);
            d.set_partition("dot/b", p);
        }
        let module = compile_with_directives(KERNEL, &format!("dot_u{unroll}"), &d)?;

        // Prediction phase (cheap: HLS only).
        let design = flow.synthesize(&module)?;
        let predictions = model.predict_design(&design, &flow.device);
        let predicted_max = predictions
            .iter()
            .map(|p| p.predicted)
            .fold(0.0f64, f64::max);

        // Ground truth (expensive: full PAR) for comparison.
        let (design, result) = flow.implement(&module)?;
        println!(
            "{:<28} {:>10} {:>12.1} {:>12.1} {:>10.1}",
            label,
            design.report.latency_cycles(),
            predicted_max,
            result.congestion.max_any(),
            result.timing.fmax_mhz
        );
    }
    println!("\n(prediction needs only the HLS run — the PAR column is just for validation)");
    Ok(())
}
