//! Quickstart: train a congestion model on the benchmark suite, evaluate it
//! on held-out operations, and print the paper's accuracy metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fpga_hls_congestion::prelude::*;
use rosetta_gen::{suite, Preset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the training designs: the paper's three suite groups
    //    (Face Detection; DigitRec + SpamFilter; BNN + 3DRendering + Flow).
    let modules: Vec<Module> = suite::groups(Preset::Optimized)
        .into_iter()
        .map(|b| b.build())
        .collect::<Result<_, _>>()?;

    // 2. Training phase: one full HLS + place-and-route run per design,
    //    back-trace per-CLB congestion to IR operations, extract the 302
    //    features.
    let flow = CongestionFlow::new();
    println!("implementing {} designs (HLS + PAR)...", modules.len());
    let dataset = flow.build_dataset(&modules)?;
    println!("dataset: {} labelled operations", dataset.len());

    // 3. Filter marginal unroll replicas (paper §III-C1).
    let filtered = filter_marginal(&dataset, &FilterOptions::default());
    println!(
        "filtered {} marginal samples ({:.1}%)",
        filtered.removed,
        filtered.removed_fraction * 100.0
    );

    // 4. Train the paper's three models on the vertical metric and compare.
    let (train, test) = filtered.kept.split(0.2, 42);
    for kind in [ModelKind::Linear, ModelKind::Ann, ModelKind::Gbrt] {
        let model =
            CongestionPredictor::train(kind, Target::Vertical, &train, &TrainOptions::default());
        let acc = model.evaluate(&test);
        println!(
            "{:<7} vertical congestion: MAE {:.2}%, MedAE {:.2}%",
            model.kind.name(),
            acc.mae,
            acc.medae
        );
    }
    Ok(())
}
