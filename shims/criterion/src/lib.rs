//! Minimal, fully offline stand-in for the `criterion` bench harness.
//!
//! Supports the subset the workspace benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `sample_size`, `finish`),
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a fixed number of samples
//! and prints mean / min / max wall-clock time per iteration — no warm-up
//! schedule, outlier analysis, or HTML reports.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

/// The bench driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, 10, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.as_ref()), self.samples, f);
        self
    }

    /// End the group (upstream writes reports here; the shim is a no-op).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let min = b.times.iter().min().copied().unwrap_or_default();
    let max = b.times.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<50} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        b.times.len()
    );
}

/// Bundle bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 10);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut ran = 0usize;
        g.bench_function("smoke", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 3);
    }
}
