//! Minimal, fully offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: range strategies, tuples, `Just`, `prop_map`,
//! `prop_flat_map`, `prop::collection::vec`, `prop::sample::select`, a
//! `.{n,m}`-style string strategy, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros. Cases are generated deterministically (seeded per
//! test name and case index); there is no shrinking — a failure reports the
//! case index so it can be replayed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert!`-style failure with a rendered message.
    Fail(String),
}

/// Runner configuration (shim: only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-(test, case) RNG used by the `proptest!` macro.
#[doc(hidden)]
pub fn __rng_for(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+ ))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String strategy from a regex-like pattern.
///
/// The shim understands `.{n,m}` ("between n and m arbitrary non-newline
/// characters") and `.` (one character); any other pattern generates itself
/// literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        fn arbitrary_char(rng: &mut StdRng) -> char {
            loop {
                let c = match rng.gen_range(0u32..10) {
                    0..=5 => char::from(rng.gen_range(0x20u8..0x7f)),
                    6 | 7 => char::from(rng.gen_range(0x00u8..0x20)),
                    8 => char::from_u32(rng.gen_range(0x80u32..0xD800)).unwrap_or('ÿ'),
                    _ => {
                        char::from_u32(rng.gen_range(0x1_0000u32..0x11_0000)).unwrap_or('\u{10000}')
                    }
                };
                if c != '\n' {
                    return c;
                }
            }
        }
        if let Some((min, max)) = parse_dot_repeat(self) {
            let len = if max > min {
                rng.gen_range(min..max + 1)
            } else {
                min
            };
            (0..len).map(|_| arbitrary_char(rng)).collect()
        } else if *self == "." {
            arbitrary_char(rng).to_string()
        } else {
            (*self).to_string()
        }
    }
}

/// Parse `.{n,m}` into `(n, m)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Sub-strategies namespaced like upstream proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Accepted size specifications for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy producing `Vec`s of `element` with a size drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.hi > self.size.lo + 1 {
                    rng.gen_range(self.size.lo..self.size.hi)
                } else {
                    self.size.lo
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed set of values.
        ///
        /// # Panics
        /// [`Strategy::generate`] panics if `values` is empty.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            Select { values }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                assert!(!self.values.is_empty(), "select over an empty set");
                self.values[rng.gen_range(0..self.values.len())].clone()
            }
        }
    }
}

/// Types with a canonical whole-domain strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uniform!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Strategy over `T`'s whole domain. See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::__rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), __case, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: both sides equal `{:?}`",
            __a
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_flat_map_compose(
            s in (1u32..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0i64..10, n as usize))
            })
        ) {
            prop_assert_eq!(s.1.len(), s.0 as usize);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn string_pattern_has_no_newline(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(!s.contains('\n'));
        }

        #[test]
        fn select_picks_member(c in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&c));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 5..20);
        let a = Strategy::generate(&strat, &mut crate::__rng_for("t", 3));
        let b = Strategy::generate(&strat, &mut crate::__rng_for("t", 3));
        assert_eq!(a, b);
    }
}
