//! Minimal, fully offline stand-in for the `rand` crate.
//!
//! The workspace only needs a deterministic, seedable RNG with a handful of
//! methods (`gen`, `gen_range`, `shuffle`), so this shim implements exactly
//! that API subset over a xoshiro256** core seeded with SplitMix64. The
//! numeric streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this repository only relies on determinism for a fixed
//! seed — which this shim guarantees — never on a specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Sample one value.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: &core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &core::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: &core::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + f64::from_rng(rng) * (range.end - range.start)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, &(0..i + 1));
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, &(0..self.len()))])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }
}
