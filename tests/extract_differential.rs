//! Differential test for the two feature-extraction kernels.
//!
//! The SoA kernel (`extract_into`, the default fast path) and the Reference
//! kernel (the original per-node `Vec` allocation path) must produce
//! *bitwise*-identical feature matrices — not merely `f64 ==` equal, which
//! would miss `-0.0` vs `+0.0` discrepancies that change the CSV bytes.

use congestion_core::features::{feature_names, ExtractKernel};
use congestion_core::persist::write_csv;
use congestion_core::CongestionDataset;
use fpga_hls_congestion::prelude::*;

/// Run both kernels over the same implemented designs.
fn datasets_for(modules: &[Module]) -> (CongestionDataset, CongestionDataset) {
    let flow = CongestionFlow::fast();
    let mut soa = CongestionDataset::new();
    let mut reference = CongestionDataset::new();
    for module in modules {
        let (design, impl_result) = flow.implement(module).expect("implement");
        soa.add_design_with(&design, &impl_result, &flow.device, ExtractKernel::Soa)
            .expect("soa extraction");
        reference
            .add_design_with(
                &design,
                &impl_result,
                &flow.device,
                ExtractKernel::Reference,
            )
            .expect("reference extraction");
    }
    (soa, reference)
}

/// Bit-pattern equality on every feature of every sample, plus equality of
/// the serialized CSV bytes (the form training artifacts are stored in).
fn assert_bitwise_identical(soa: &CongestionDataset, reference: &CongestionDataset) {
    assert_eq!(soa.len(), reference.len());
    assert!(!soa.is_empty(), "differential corpus produced no samples");
    let names = feature_names();
    for i in 0..soa.len() {
        let (a, b) = (soa.features_of(i), reference.features_of(i));
        assert_eq!(a.len(), b.len());
        for (c, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "sample {i}, feature {c} ({}): soa {x:?} vs reference {y:?}",
                names[c],
            );
        }
    }
    let (mut csv_soa, mut csv_reference) = (Vec::new(), Vec::new());
    write_csv(soa, &mut csv_soa).expect("serialize soa");
    write_csv(reference, &mut csv_reference).expect("serialize reference");
    assert_eq!(csv_soa, csv_reference, "CSV bytes differ between kernels");
}

#[test]
fn kernels_agree_bitwise_on_rosetta_suite() {
    let modules: Vec<Module> = rosetta_gen::suite::groups(rosetta_gen::Preset::Optimized)
        .iter()
        .map(|b| b.build().expect("suite benchmark builds"))
        .collect();
    let (soa, reference) = datasets_for(&modules);
    assert_bitwise_identical(&soa, &reference);
}

#[test]
fn kernels_agree_bitwise_on_sparse_graphs() {
    // Hand-written designs whose graphs contain nodes with empty pred/succ
    // neighborhoods — the shape that once exposed a `-0.0` sum identity in
    // the Reference kernel's empty-iterator `.sum()`.
    let sources = [
        (
            "loner",
            "int32 f(int32 a, int32 b) { int32 x; x = a + b; return x; }",
        ),
        (
            "mac_unrolled",
            "int32 f(int32 a[16], int32 b[16]) {\n\
             #pragma HLS array_partition variable=a complete\n\
             #pragma HLS array_partition variable=b complete\n\
             int32 s; int32 i; s = 0;\n\
             #pragma HLS unroll\n\
             for (i = 0; i < 16; i++) { s = s + a[i] * b[i]; }\n\
             return s; }",
        ),
    ];
    let modules: Vec<Module> = sources
        .iter()
        .map(|(name, src)| compile_named(src, name).expect("compiles"))
        .collect();
    let (soa, reference) = datasets_for(&modules);
    assert_bitwise_identical(&soa, &reference);
}
