//! Committed bench-artifact schema contract.
//!
//! Every `BENCH_*.json` baseline at the repo root and every
//! `reports/*_bench.json` mirror must parse as a well-formed
//! `obskit.metrics.v1` document with complete meta stamps (tool, version,
//! git, effort, the four kernel selections). A stale artifact — one
//! emitted before a schema or meta change — fails here, in CI, instead of
//! silently passing the regression gate with missing fields. The mirror
//! and root copies come from one writer, so full-effort mirrors must be
//! byte-identical to their baselines.

use fpga_hls_congestion::faultkit::json::{parse, Value};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

/// Baseline ↔ mirror pairs the canonical writer produces.
const PAIRS: &[(&str, &str)] = &[
    ("BENCH_place.json", "reports/place_bench.json"),
    ("BENCH_route.json", "reports/router_bench.json"),
    ("BENCH_train.json", "reports/train_bench.json"),
    ("BENCH_pipeline.json", "reports/pipeline_bench.json"),
];

/// Parse one artifact and assert the `obskit.metrics.v1` contract.
fn assert_metrics_doc(name: &str, text: &str) -> Value {
    let doc = parse(text).unwrap_or_else(|e| panic!("{name}: not valid JSON: {e}"));
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("obskit.metrics.v1"),
        "{name}: wrong or missing schema tag"
    );
    let meta = doc
        .get("meta")
        .and_then(Value::as_obj)
        .unwrap_or_else(|| panic!("{name}: missing meta object"));
    for key in [
        "tool",
        "version",
        "git",
        "effort",
        "kernel.extract",
        "kernel.place",
        "kernel.route",
        "kernel.gbrt",
    ] {
        assert!(
            meta.get(key).and_then(Value::as_str).is_some(),
            "{name}: meta is missing the `{key}` stamp — regenerate the \
             artifact with a full-effort bench run"
        );
    }
    for section in ["counters", "gauges", "histograms"] {
        assert!(
            doc.get(section).and_then(Value::as_obj).is_some(),
            "{name}: missing `{section}` object"
        );
    }
    // Counters must be non-negative integers (the parser enforces number-
    // ness; as_u64 enforces integrality).
    for (k, v) in doc.get("counters").and_then(Value::as_obj).unwrap() {
        assert!(v.as_u64().is_some(), "{name}: counter {k} is not a u64");
    }
    for (k, v) in doc.get("gauges").and_then(Value::as_obj).unwrap() {
        assert!(
            v.as_f64().is_some() || *v == Value::Null,
            "{name}: gauge {k} is not a number"
        );
    }
    doc
}

#[test]
fn every_committed_bench_artifact_is_schema_valid() {
    let root = repo_root();
    let mut checked = 0;
    for (baseline, mirror) in PAIRS {
        for name in [*baseline, *mirror] {
            let path = root.join(name);
            if name == *mirror && !path.exists() {
                // Mirrors regenerate on every bench run and need not all be
                // committed; baselines must be.
                continue;
            }
            let text = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{name}: committed baseline unreadable: {e}"));
            assert_metrics_doc(name, &text);
            checked += 1;
        }
    }
    assert!(checked >= 4, "all four committed baselines must be checked");
}

#[test]
fn full_effort_mirrors_are_byte_identical_to_baselines() {
    let root = repo_root();
    for (baseline, mirror) in PAIRS {
        let mirror_path = root.join(mirror);
        if !mirror_path.exists() {
            continue;
        }
        let mtext = fs::read_to_string(&mirror_path).unwrap();
        let effort = parse(&mtext).ok().and_then(|d| {
            d.get("meta")
                .and_then(|m| m.get("effort"))
                .and_then(|v| v.as_str().map(str::to_string))
        });
        if effort.as_deref() != Some("full") {
            continue; // fast smoke overwrote the mirror locally
        }
        let btext = fs::read_to_string(root.join(baseline)).unwrap();
        assert_eq!(
            mtext, btext,
            "{mirror} and {baseline} must be byte-identical (one writer emits both)"
        );
    }
}

#[test]
fn committed_baselines_pass_the_regression_gate_checks() {
    // The same bands `experiments regress` applies: committed baselines
    // must sit inside every tolerance band, so a bad baseline cannot be
    // committed without this test (and CI's gate) going red.
    let root = repo_root();
    for (baseline, _) in PAIRS {
        let text = fs::read_to_string(root.join(baseline)).unwrap();
        let doc = assert_metrics_doc(baseline, &text);
        // Spot-check the headline band per artifact.
        let gauge = |key: &str| {
            doc.get("gauges")
                .and_then(|g| g.get(key))
                .and_then(Value::as_f64)
        };
        match *baseline {
            "BENCH_place.json" => {
                assert!(
                    gauge("place_bench.total.speedup").unwrap() >= 1.3,
                    "{baseline}"
                )
            }
            "BENCH_route.json" => {
                assert!(
                    gauge("router_bench.fd_opt.speedup").unwrap() >= 1.5,
                    "{baseline}"
                )
            }
            "BENCH_train.json" => {
                for t in ["vertical", "horizontal"] {
                    assert!(
                        gauge(&format!("train_bench.{t}.fit_speedup")).unwrap() >= 1.5,
                        "{baseline}: {t}"
                    );
                }
            }
            "BENCH_pipeline.json" => assert!(
                gauge("pipeline_bench.total.features_speedup").unwrap() >= 1.5,
                "{baseline}"
            ),
            _ => unreachable!(),
        }
    }
}
