//! Integration coverage for the analysis/reporting layers: ASAP/ALAP
//! bounds vs the real schedule, utilization reports, dataset statistics,
//! and CSV persistence through the public facade.

use fpga_hls_congestion::prelude::*;
use hls_synth::asap::asap_alap;

const SRC: &str =
    "int32 f(int32 a[32], int32 k) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }";

#[test]
fn asap_bounds_are_consistent_with_the_real_schedule() {
    let m = compile_named(SRC, "asap").unwrap();
    let design = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
    let f = design.module.top_function();
    let bounds = asap_alap(f, &design.lib);
    let sched = design.top_schedule();
    for op in &f.ops {
        let i = op.id.index();
        // The resource-constrained schedule can only be *later* than the
        // unconstrained ASAP within its region; since loops restart the
        // region clock, compare only op-relative facts: mobility sanity.
        assert!(bounds.asap[i] <= bounds.alap[i]);
        let _ = sched.start[i];
    }
    assert!(!bounds.critical_ops().is_empty());
}

#[test]
fn utilization_report_tracks_the_netlist() {
    let m = compile_named(SRC, "util").unwrap();
    let design = HlsFlow::new(HlsOptions::default()).run(&m).unwrap();
    let flow = CongestionFlow::fast();
    let report = fpga_fabric::UtilizationReport::new(&design.rtl, &flow.device);
    let total = design.rtl.total_resources();
    assert_eq!(report.rows[0].used, total.luts);
    assert_eq!(report.rows[1].used, total.ffs);
    assert_eq!(report.rows[2].used, total.dsps);
    assert_eq!(report.rows[3].used, total.brams);
    assert!(!report.over_capacity(), "small kernel fits the device");
}

#[test]
fn dataset_stats_and_persistence_roundtrip() {
    let flow = CongestionFlow::fast();
    let m = compile_named(SRC, "stats").unwrap();
    let ds = flow.build_dataset(std::slice::from_ref(&m)).unwrap();

    let stats = congestion_core::stats::dataset_stats(&ds, Target::Average);
    assert_eq!(stats.overall.count, ds.len());
    assert!(stats.per_design.contains_key("stats"));
    assert!(stats.overall.max >= stats.overall.mean);
    assert!(
        stats.overall.replica_fraction > 0.0,
        "unrolled kernel produces replica samples"
    );

    // Round-trip through CSV and confirm training still works.
    let path = std::env::temp_dir().join("congestion_integration_roundtrip.csv");
    congestion_core::persist::save(&ds, &path).unwrap();
    let back = congestion_core::persist::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back.len(), ds.len());
    let model = CongestionPredictor::train(
        ModelKind::Linear,
        Target::Average,
        &back,
        &TrainOptions::fast(),
    );
    let acc = model.evaluate(&back);
    assert!(acc.mae.is_finite());
}
