//! Frontend + HLS robustness over a battery of MiniHLS programs, plus
//! property-based tests that randomly generated straight-line programs
//! always compile, verify, schedule, and produce routable netlists.

use fpga_hls_congestion::prelude::*;
use proptest::prelude::*;

#[test]
fn program_battery_compiles_and_synthesizes() {
    let programs = [
        // Nested loops with mixed pragmas.
        "int32 f(int16 a[64]) { int32 s = 0; for (i = 0; i < 8; i++) {\n#pragma HLS unroll\nfor (j = 0; j < 8; j++) { s = s + a[i * 8 + j]; } } return s; }",
        // Ternaries, logical ops, shifts.
        "int32 f(int32 x, int32 y) { return (x > 0 && y > 0) ? (x << 2) + (y >> 1) : (x | y) ^ 0xFF; }",
        // Predicated stores through if/else.
        "void f(int8 a[16], int8 v) { for (i = 0; i < 16; i++) { if (v > 0) { a[i] = v; } else { a[i] = 0 - v; } } }",
        // Multi-function with arrays passed through calls.
        "int32 sum(int32 a[8]) { int32 s = 0; for (i = 0; i < 8; i++) { s = s + a[i]; } return s; }\nint32 f(int32 a[8], int32 b[8]) { return sum(a) * sum(b); }",
        // Division and remainder (multi-cycle operators).
        "int32 f(int32 x, int32 y) { return x / (y | 1) + x % (y | 1); }",
        // Wide arithmetic near the 64-bit cap.
        "int64 f(int64 x, int64 y) { return x * y + (x >> 3); }",
        // Builtins.
        "int32 f(int32 x) { return sqrt(abs(x)) + popcount(x); }",
        // Compound assignment and hex literals.
        "int32 f(int32 x) { int32 acc = 0x10; acc += x; acc += acc >> 2; return acc; }",
    ];
    let flow = CongestionFlow::fast();
    for (i, src) in programs.iter().enumerate() {
        let m = compile_named(src, &format!("battery{i}"))
            .unwrap_or_else(|e| panic!("program {i} failed to compile: {e}\n{src}"));
        let (design, result) = flow
            .implement(&m)
            .unwrap_or_else(|e| panic!("program {i} failed to synthesize: {e}"));
        assert!(design.report.latency_cycles() > 0, "program {i}");
        assert!(result.timing.fmax_mhz > 0.0, "program {i}");
    }
}

/// A tiny random straight-line MiniHLS generator.
fn arbitrary_program() -> impl Strategy<Value = String> {
    let ops = prop::sample::select(vec!["+", "-", "*", "&", "|", "^"]);
    let stmts = prop::collection::vec((0usize..4, ops, 1i64..64), 1..12);
    stmts.prop_map(|stmts| {
        let mut body = String::new();
        for (i, (var, op, c)) in stmts.iter().enumerate() {
            let prev = if i == 0 {
                "x".to_string()
            } else {
                format!("t{}", i - 1)
            };
            let operand = match var {
                0 => "x".to_string(),
                1 => "y".to_string(),
                2 => c.to_string(),
                _ => prev.clone(),
            };
            body.push_str(&format!("int32 t{i} = {prev} {op} {operand};\n"));
        }
        let last = stmts.len() - 1;
        format!("int32 f(int32 x, int32 y) {{\n{body}return t{last};\n}}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_straight_line_programs_flow_end_to_end(src in arbitrary_program()) {
        let m = compile_named(&src, "prop").expect("random program must compile");
        hls_ir::verify::verify_module(&m).expect("IR must verify");
        let design = HlsFlow::new(HlsOptions::default()).run(&m).expect("must synthesize");
        // Schedules cover every op and respect dependency order.
        let f = design.module.top_function();
        let sched = design.top_schedule();
        for op in &f.ops {
            for operand in &op.operands {
                let src_end = sched.end[operand.src.index()];
                let dst_start = sched.start[op.id.index()];
                prop_assert!(
                    dst_start >= src_end || op.kind == hls_ir::OpKind::Phi,
                    "op {} starts at {} before operand {} ends at {}",
                    op.id, dst_start, operand.src, src_end
                );
            }
        }
        // The netlist is structurally sound.
        for net in &design.rtl.nets {
            prop_assert!(net.driver.index() < design.rtl.cells.len());
            prop_assert!(net.sinks.iter().all(|s| s.index() < design.rtl.cells.len()));
        }
    }

    #[test]
    fn random_programs_have_consistent_feature_vectors(src in arbitrary_program()) {
        let flow = CongestionFlow::fast();
        let m = compile_named(&src, "prop2").expect("random program must compile");
        let ds = flow.build_dataset(std::slice::from_ref(&m)).expect("dataset");
        for i in 0..ds.len() {
            let row = ds.features_of(i);
            prop_assert_eq!(row.len(), congestion_core::FEATURE_COUNT);
            prop_assert!(row.iter().all(|v| v.is_finite()));
            // One-hot operator type sums to exactly 1.
            let r = congestion_core::FeatureCategory::OperatorType.range();
            let one_hot: f64 = row[r.start..r.start + 41].iter().sum();
            prop_assert!((one_hot - 1.0).abs() < 1e-9);
        }
    }
}
