//! The paper's qualitative claims, checked end to end at reduced effort:
//! these are the result *shapes* EXPERIMENTS.md records at full effort.

use fpga_hls_congestion::prelude::*;
use rosetta_gen::face_detection::{self, FdVariant};

fn implement(variant: FdVariant) -> (hls_synth::SynthesizedDesign, ImplResult) {
    let flow = CongestionFlow::fast();
    let m = face_detection::benchmark(variant).build().unwrap();
    flow.implement(&m).unwrap()
}

#[test]
fn directives_trade_latency_for_congestion_and_frequency() {
    // Paper Table I: optimized FD is ~16x faster in cycles but misses
    // timing and is far more congested.
    let (opt_d, opt_r) = implement(FdVariant::Optimized);
    let (plain_d, plain_r) = implement(FdVariant::Plain);
    assert!(opt_d.report.latency_cycles() * 5 < plain_d.report.latency_cycles());
    assert!(opt_r.timing.fmax_mhz < plain_r.timing.fmax_mhz);
    assert!(opt_r.congestion.max_any() > plain_r.congestion.max_any() * 2.0);
    assert!(opt_r.timing.wns_ns < plain_r.timing.wns_ns);
}

#[test]
fn case_study_steps_resolve_congestion() {
    // Paper Table VI: max congestion falls across Baseline -> NotInline ->
    // Replication while frequency recovers.
    let (_, base) = implement(FdVariant::Optimized);
    let (_, noinl) = implement(FdVariant::NoInline);
    let (_, repl) = implement(FdVariant::Replicated);
    assert!(
        base.congestion.max_any() > noinl.congestion.max_any(),
        "step 1: {:.0} -> {:.0}",
        base.congestion.max_any(),
        noinl.congestion.max_any()
    );
    assert!(
        base.congestion.max_any() > repl.congestion.max_any(),
        "step 2 vs baseline: {:.0} -> {:.0}",
        base.congestion.max_any(),
        repl.congestion.max_any()
    );
    // The paper's Table VI metric is *max* congestion; the congested
    // area carries no ordering claim — the delta placer packs the flat
    // baseline into a sharper but smaller hotspot than the larger
    // modular variants can reach, so area alone would invert.
    assert!(
        base.timing.wns_ns <= repl.timing.wns_ns + 0.1,
        "slack recovers"
    );
    assert!(base.timing.fmax_mhz <= repl.timing.fmax_mhz + 1.0);
}

#[test]
fn congestion_concentrates_in_device_center() {
    // Paper Fig 5: marginal rows are less congested than central rows.
    let (_, res) = implement(FdVariant::Optimized);
    let profile = res.congestion.row_profile(true);
    let n = profile.len();
    let margin: f64 = profile[..n / 8]
        .iter()
        .chain(profile[n - n / 8..].iter())
        .sum::<f64>()
        / (2 * (n / 8)) as f64;
    let center: f64 = profile[3 * n / 8..5 * n / 8].iter().sum::<f64>() / (n / 4) as f64;
    assert!(
        center > margin,
        "center {center:.1}% must exceed margin {margin:.1}%"
    );
}

#[test]
fn gbrt_beats_linear_on_real_congestion_data() {
    // Paper Table IV's model ordering on an actual (small) dataset.
    let flow = CongestionFlow::fast();
    let modules: Vec<Module> = [
        "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=8\nint32 s = 0;\n#pragma HLS unroll factor=8\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int64 a[16]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 16; i++) { s = s + popcount(a[i]); } return s; }",
        "int32 h(int16 a[32], int16 b[32]) { int32 s = 0; for (i = 0; i < 32; i++) { s = s + a[i] * b[i]; } return s; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("m{i}")).unwrap())
    .collect();
    let ds = flow.build_dataset(&modules).unwrap();
    let filtered = filter_marginal(&ds, &FilterOptions::default());
    let (train, test) = filtered.kept.split(0.25, 7);
    let opts = TrainOptions {
        effort: 0.5,
        ..TrainOptions::fast()
    };
    let gbrt =
        CongestionPredictor::train(ModelKind::Gbrt, Target::Average, &train, &opts).evaluate(&test);
    let linear = CongestionPredictor::train(ModelKind::Linear, Target::Average, &train, &opts)
        .evaluate(&test);
    assert!(
        gbrt.mae <= linear.mae * 1.1,
        "GBRT ({:.2}) should be competitive with or beat Linear ({:.2})",
        gbrt.mae,
        linear.mae
    );
}
