//! Chaos-engineering contract tests for `congestd` (the servekit daemon).
//!
//! The serving robustness contract under test:
//!
//! * **Typed replies, always** — under 2× overload with faults injected
//!   into the serve stages (panics, transient errors, delays), every
//!   submitted request receives exactly one typed reply; the daemon never
//!   dies and the final accounting balances (admitted = completed + shed).
//! * **Gate + rollback** — a corrupt or incompatible artifact never goes
//!   live: the swap is rejected, the reject *is* the rollback (the daemon
//!   keeps answering on the model it already trusts), and both are visible
//!   in the `serve.*` metrics and the journal.
//! * **Crash-only recovery** — SIGKILL the real `congestd` process and
//!   restart it on the same journal: the registry comes back on the last
//!   validated model, the journal carries a `recover` record, and no
//!   sequence number is ever duplicated.
//! * **Deterministic shedding** — the shed/served id partition is a pure
//!   function of the arrival/drain trace and the queue capacity,
//!   bit-identical across runs and worker counts ([`shed_plan`] is the
//!   reference model the live queue must match).

use fpga_hls_congestion::faultkit::{serve_stages, FaultKind, FaultPlan, FaultRule};
use fpga_hls_congestion::mlkit::CompiledEnsemble;
use fpga_hls_congestion::servekit::{
    shed_plan, AdmissionQueue, ModelArtifact, Reply, ReplyStatus, Request, RequestBody,
    ServeConfig, Server, TraceStep,
};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const LEAF: u32 = u32::MAX;

/// A tiny deterministic artifact: one stump per target splitting on
/// feature 0 at 3.0 (leaves 10/90), V base 1.0 / H base 0.5.
fn stump_artifact(version: u64, feature_count: usize) -> ModelArtifact {
    let nodes = vec![(0u32, 1, 2, 3.0), (LEAF, 0, 0, 10.0), (LEAF, 0, 0, 90.0)];
    let mk = |base: f64| {
        CompiledEnsemble::from_raw(base, 1.0, vec![0], nodes.clone(), feature_count).unwrap()
    };
    ModelArtifact {
        name: "gbrt".into(),
        version,
        feature_count,
        trained_on: "chaos-test".into(),
        vertical: mk(1.0),
        horizontal: mk(0.5),
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hls_congest_serve_{tag}_{}", std::process::id()))
}

#[test]
fn chaos_overload_every_request_gets_a_typed_reply() {
    // Panics, persistent transient errors, and delays across the serve
    // stages, against a 4-deep queue fed a fast 2×-overload burst.
    let plan = FaultPlan::new(11)
        .with_rule(FaultRule::once("*", serve_stages::PREDICT, FaultKind::Panic).for_attempts(3))
        .with_rule(FaultRule::once("*", serve_stages::PREDICT, FaultKind::Error).for_attempts(2))
        .with_rule(
            FaultRule::once(
                "*",
                serve_stages::PREDICT,
                FaultKind::Delay(Duration::from_millis(2)),
            )
            .for_attempts(u32::MAX),
        )
        .with_rule(FaultRule::once(
            "*",
            serve_stages::ADMISSION,
            FaultKind::Error,
        ));
    let mut cfg = ServeConfig {
        queue_capacity: 4,
        workers: 2,
        plan: Some(Arc::new(plan)),
        ..Default::default()
    };
    cfg.gate.expected_features = 4;
    let (server, report) = Server::start(cfg, Some(stump_artifact(1, 4)), None).unwrap();
    assert!(report.install_error.is_none(), "{report:?}");

    let total = 64u64;
    let rxs: Vec<_> = (0..total)
        .map(|i| server.submit(Request::predict(i, vec![vec![1.0; 4]; 8])))
        .collect();
    let mut answered = BTreeSet::new();
    let mut shed = 0u64;
    for rx in rxs {
        let reply: Reply = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("every request must be answered, never stalled");
        assert!(
            answered.insert(reply.id),
            "request {} answered twice",
            reply.id
        );
        if reply.status == ReplyStatus::Overloaded {
            shed += 1;
        }
        if reply.status == ReplyStatus::Error {
            assert!(reply.error.is_some(), "errors must carry a reason");
        }
    }
    assert_eq!(answered.len() as u64, total, "one reply per request");

    let sum = server.shutdown();
    assert_eq!(
        sum.metrics.admitted,
        sum.metrics.completed + sum.metrics.shed,
        "accounting must balance: {:?}",
        sum.metrics
    );
    assert_eq!(sum.metrics.shed, shed);
    assert!(
        sum.metrics.injected > 0,
        "the fault plan must actually have fired"
    );
}

#[test]
fn corrupt_artifact_swap_is_rejected_and_rolls_back_visibly() {
    let dir = tmp("swapgate");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    let mut cfg = ServeConfig {
        journal_path: Some(journal.clone()),
        ..Default::default()
    };
    cfg.gate.expected_features = 4;
    let (server, _) = Server::start(cfg, Some(stump_artifact(1, 4)), None).unwrap();
    assert_eq!(server.active_model(), "gbrt@v1");

    // Corruption ladder: unreadable file, garbage JSON, wrong feature width.
    let garbage = dir.join("garbage.json");
    std::fs::write(
        &garbage,
        "{\"schema\": \"servekit.model.v1\", \"nodes\": [[",
    )
    .unwrap();
    let wrong_width = dir.join("wrong_width.json");
    stump_artifact(2, 7).save(&wrong_width).unwrap();
    for (i, path) in [dir.join("missing.json"), garbage, wrong_width]
        .iter()
        .enumerate()
    {
        let reply = server.call(Request {
            id: 100 + i as u64,
            deadline_ms: None,
            body: RequestBody::Swap {
                path: path.display().to_string(),
            },
        });
        assert_eq!(reply.status, ReplyStatus::Error, "{reply:?}");
        assert_eq!(
            reply.model, "gbrt@v1",
            "a rejected swap must leave the trusted model active"
        );
    }
    // A good artifact still gets through the same gate afterwards.
    let good = dir.join("good.json");
    stump_artifact(3, 4).save(&good).unwrap();
    let reply = server.call(Request {
        id: 200,
        deadline_ms: None,
        body: RequestBody::Swap {
            path: good.display().to_string(),
        },
    });
    assert_eq!(reply.status, ReplyStatus::Ok, "{reply:?}");
    assert_eq!(server.active_model(), "gbrt@v3");

    // Rejections and the implied rollbacks are visible in serve.* metrics…
    let snap = server.metrics();
    assert_eq!(snap.counters["serve.swap.rejected"], 3);
    assert_eq!(snap.counters["serve.swap.rollbacks"], 3);
    // Two commits: the initial install goes through the same gate.
    assert_eq!(snap.counters["serve.swap.committed"], 2);
    server.shutdown();

    // …and in the journal.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.matches("\"swap.reject\"").count(), 3, "{text}");
    assert_eq!(text.matches("\"rollback\"").count(), 3, "{text}");
    assert!(text.contains("\"swap.commit\""), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawn the real `congestd` binary and return (child, bound address).
fn spawn_congestd(args: &[String]) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_hls_congest"))
        .arg("serve")
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn congestd");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut addr = String::new();
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = rest.split_whitespace().next().unwrap_or("").to_string();
            break;
        }
        line.clear();
    }
    assert!(!addr.is_empty(), "congestd never reported a bound address");
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).unwrap_or(0) > 0 {
            sink.clear();
        }
    });
    (child, addr)
}

#[test]
fn sigkill_restart_recovers_registry_with_unique_seqs() {
    let dir = tmp("sigkill");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");
    let model = dir.join("model.json");
    stump_artifact(1, 4).save(&model).unwrap();
    let base_args = vec![
        "--model".to_string(),
        model.display().to_string(),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--journal".to_string(),
        journal.display().to_string(),
        "--expect-features".to_string(),
        "4".to_string(),
    ];

    // First life: serve a few predictions, then die by SIGKILL — no
    // shutdown record ever reaches the journal.
    let (mut child, addr) = spawn_congestd(&base_args);
    for i in 0..3u64 {
        let reply =
            fpga_hls_congestion::servekit::request(&addr, &Request::predict(i, vec![vec![9.0; 4]]))
                .expect("predict over tcp");
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(reply.model, "gbrt@v1");
        assert_eq!(reply.vertical, vec![91.0]);
    }
    child.kill().expect("SIGKILL congestd");
    child.wait().unwrap();
    let after_kill = std::fs::read_to_string(&journal).unwrap();
    assert!(
        !after_kill.contains("\"shutdown\""),
        "SIGKILL must not look clean: {after_kill}"
    );

    // Second life: same journal. Recovery must land on the last validated
    // model, append a `recover` record, and continue the seq chain.
    let (mut child, addr) = spawn_congestd(&base_args);
    let status = fpga_hls_congestion::servekit::request(
        &addr,
        &Request {
            id: 50,
            deadline_ms: None,
            body: RequestBody::Status,
        },
    )
    .expect("status over tcp");
    assert_eq!(status.status, ReplyStatus::Ok);
    assert_eq!(status.model, "gbrt@v1", "{status:?}");
    let shutdown = fpga_hls_congestion::servekit::request(
        &addr,
        &Request {
            id: 51,
            deadline_ms: None,
            body: RequestBody::Shutdown,
        },
    )
    .expect("shutdown over tcp");
    assert_eq!(shutdown.status, ReplyStatus::Ok);
    assert!(child.wait().unwrap().success(), "clean exit after shutdown");

    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(text.contains("\"recover\""), "{text}");
    assert_eq!(text.matches("\"serve.start\"").count(), 2, "{text}");
    assert!(text.contains("\"shutdown\""), "{text}");
    // Zero duplicate seqs across both lives, and strictly increasing.
    let mut seqs = Vec::new();
    for line in text.lines() {
        let doc = fpga_hls_congestion::faultkit::json::parse(line).unwrap();
        seqs.push(
            doc.get("seq")
                .and_then(fpga_hls_congestion::faultkit::json::Value::as_u64)
                .expect("every record carries a seq"),
        );
    }
    let unique: BTreeSet<_> = seqs.iter().copied().collect();
    assert_eq!(unique.len(), seqs.len(), "duplicate seq in {seqs:?}");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seqs must increase: {seqs:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Replay an arrival/drain trace against a live [`AdmissionQueue`] with
/// `workers` concurrent drainers; returns `(served_ids, shed_ids)` sorted.
fn replay_live(capacity: usize, trace: &[TraceStep], workers: usize) -> (Vec<u64>, Vec<u64>) {
    let queue = Arc::new(AdmissionQueue::new(capacity));
    let mut served = Vec::new();
    let mut shed = Vec::new();
    let mut next_id = 0u64;
    for step in trace {
        for _ in 0..step.arrivals {
            match queue.push(next_id) {
                fpga_hls_congestion::servekit::Admit::Shed(old) => shed.push(old),
                fpga_hls_congestion::servekit::Admit::Queued => {}
                fpga_hls_congestion::servekit::Admit::Closed(_) => unreachable!(),
            }
            next_id += 1;
        }
        // Drain `step.drains` items with `workers` threads racing over the
        // shared pop side — the partition must not care who pops.
        let taken = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (queue, taken, popped) = (queue.clone(), taken.clone(), popped.clone());
                let budget = step.drains;
                std::thread::spawn(move || {
                    while taken.fetch_add(1, Ordering::SeqCst) < budget {
                        if let Some(id) = queue.pop() {
                            popped.lock().unwrap().push(id);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        served.extend(popped.lock().unwrap().drain(..));
    }
    // Shutdown: drain the remainder, as the server's close path does.
    queue.close();
    while let Some(id) = queue.pop() {
        served.push(id);
    }
    served.sort_unstable();
    shed.sort_unstable();
    (served, shed)
}

#[test]
fn shed_partition_is_bit_identical_across_runs_and_worker_counts() {
    // A bursty 2×-overload trace: arrivals always outpace drains.
    let trace: Vec<TraceStep> = (0..12)
        .map(|i| TraceStep {
            arrivals: 6 + (i % 3),
            drains: 3,
        })
        .collect();
    let capacity = 5;
    let reference = shed_plan(capacity, &trace);
    assert!(!reference.1.is_empty(), "2x overload must shed");
    for workers in [1usize, 2, 4, 8] {
        for run in 0..3 {
            let live = replay_live(capacity, &trace, workers);
            assert_eq!(
                live, reference,
                "workers={workers} run={run}: shed/served partition drifted"
            );
        }
    }
}

#[test]
fn shed_victims_get_overloaded_replies_while_server_is_wedged() {
    // Wedge the single worker with a long injected delay, flood the queue,
    // and check the evicted requests get typed Overloaded replies while
    // the daemon keeps accepting.
    let plan = FaultPlan::new(3).with_rule(
        FaultRule::once(
            "*",
            serve_stages::PREDICT,
            FaultKind::Delay(Duration::from_millis(30)),
        )
        .for_attempts(u32::MAX),
    );
    let mut cfg = ServeConfig {
        queue_capacity: 2,
        workers: 1,
        plan: Some(Arc::new(plan)),
        ..Default::default()
    };
    cfg.gate.expected_features = 4;
    let (server, _) = Server::start(cfg, Some(stump_artifact(1, 4)), None).unwrap();
    let rxs: Vec<_> = (0..10u64)
        .map(|i| server.submit(Request::predict(i, vec![vec![1.0; 4]])))
        .collect();
    let mut statuses = Vec::new();
    for rx in rxs {
        statuses.push(rx.recv_timeout(Duration::from_secs(30)).unwrap().status);
    }
    assert!(
        statuses.contains(&ReplyStatus::Overloaded),
        "a 2-deep queue under a 10-burst must shed: {statuses:?}"
    );
    assert!(
        statuses.contains(&ReplyStatus::Ok),
        "the survivors must still be answered: {statuses:?}"
    );
    let sum = server.shutdown();
    assert_eq!(sum.metrics.admitted, 10);
    assert_eq!(
        sum.metrics.completed + sum.metrics.shed,
        10,
        "{:?}",
        sum.metrics
    );
    let _ = std::io::stdout().flush();
}

#[test]
fn sigkill_mid_coalesced_batch_reports_the_whole_batch_lost() {
    // Wedge the real daemon *inside* a coalesced batch: five pipelined
    // single-row predicts linger into one micro-batch (300 ms window,
    // 1024-row budget), then an injected delay holds the merged
    // `predict_into` long enough to SIGKILL the process mid-batch. The
    // batch-start progress record must make restart recovery report
    // `lost_in_flight` equal to the batch's admitted size — and the seq
    // chain must stay duplicate-free across both lives.
    let dir = tmp("sigkill_batch");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");
    let model = dir.join("model.json");
    stump_artifact(1, 4).save(&model).unwrap();
    let plan_path = dir.join("plan.json");
    let plan = FaultPlan::new(11).with_rule(
        FaultRule::once(
            "*",
            fpga_hls_congestion::faultkit::serve_stages::PREDICT,
            FaultKind::Delay(Duration::from_millis(4000)),
        )
        .for_attempts(u32::MAX),
    );
    std::fs::write(&plan_path, plan.to_json()).unwrap();
    let base_args = vec![
        "--model".to_string(),
        model.display().to_string(),
        "--addr".to_string(),
        "127.0.0.1:0".to_string(),
        "--journal".to_string(),
        journal.display().to_string(),
        "--expect-features".to_string(),
        "4".to_string(),
        "--frontend".to_string(),
        "event-loop".to_string(),
        "--batch-max-rows".to_string(),
        "1024".to_string(),
        "--batch-max-wait-ms".to_string(),
        "300".to_string(),
    ];
    let mut wedged_args = base_args.clone();
    wedged_args.extend(["--fault-plan".to_string(), plan_path.display().to_string()]);

    // First life: pipeline the whole burst on one connection. The event
    // loop admits every frame without waiting for replies, the worker
    // lingers them into a single batch, journals batch-start progress,
    // then hits the injected delay — that's when SIGKILL lands.
    let batch_size = 5u64;
    let (mut child, addr) = spawn_congestd(&wedged_args);
    {
        let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
        for i in 0..batch_size {
            fpga_hls_congestion::servekit::write_frame(
                &mut stream,
                &Request::predict(i, vec![vec![9.0; 4]]).to_json(),
            )
            .expect("write frame");
        }
        // Linger (300 ms) + a margin inside the 4 s delay window.
        std::thread::sleep(Duration::from_millis(1500));
        child.kill().expect("SIGKILL congestd");
        child.wait().unwrap();
    }
    let after_kill = std::fs::read_to_string(&journal).unwrap();
    assert!(!after_kill.contains("\"shutdown\""), "{after_kill}");
    assert!(
        after_kill.contains("\"progress\""),
        "batch start must journal progress before the merged predict: {after_kill}"
    );

    // Second life, no faults: recovery must account the wedged batch as
    // lost in flight — all five admitted, none completed, none shed.
    let (mut child, addr) = spawn_congestd(&base_args);
    let status = fpga_hls_congestion::servekit::request(
        &addr,
        &Request {
            id: 90,
            deadline_ms: None,
            body: RequestBody::Status,
        },
    )
    .expect("status over tcp");
    assert_eq!(status.status, ReplyStatus::Ok, "{status:?}");
    let shutdown = fpga_hls_congestion::servekit::request(
        &addr,
        &Request {
            id: 91,
            deadline_ms: None,
            body: RequestBody::Shutdown,
        },
    )
    .expect("shutdown over tcp");
    assert_eq!(shutdown.status, ReplyStatus::Ok);
    assert!(child.wait().unwrap().success());

    let text = std::fs::read_to_string(&journal).unwrap();
    let mut seqs = Vec::new();
    let mut recovered_lost = None;
    for line in text.lines() {
        let doc = fpga_hls_congestion::faultkit::json::parse(line).unwrap();
        seqs.push(
            doc.get("seq")
                .and_then(fpga_hls_congestion::faultkit::json::Value::as_u64)
                .expect("every record carries a seq"),
        );
        if doc
            .get("event")
            .and_then(fpga_hls_congestion::faultkit::json::Value::as_str)
            == Some("recover")
        {
            recovered_lost = doc
                .get("lost_in_flight")
                .and_then(fpga_hls_congestion::faultkit::json::Value::as_u64);
        }
    }
    assert_eq!(
        recovered_lost,
        Some(batch_size),
        "recovery must report the whole wedged batch: {text}"
    );
    let unique: BTreeSet<_> = seqs.iter().copied().collect();
    assert_eq!(unique.len(), seqs.len(), "duplicate seq in {seqs:?}");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seqs must increase: {seqs:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
