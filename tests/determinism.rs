//! Reproducibility: identical seeds must produce bit-identical datasets,
//! placements, and model predictions across independent runs.

use fpga_hls_congestion::prelude::*;

fn module() -> Module {
    compile_named(
        "int32 f(int32 a[32], int32 k) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        "det",
    )
    .unwrap()
}

#[test]
fn dataset_is_reproducible() {
    let run = || {
        let flow = CongestionFlow::fast();
        flow.build_dataset(std::slice::from_ref(&module())).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.features(), b.features());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.op, y.op);
        assert_eq!(x.vertical, y.vertical);
        assert_eq!(x.horizontal, y.horizontal);
    }
}

#[test]
fn trained_models_are_reproducible() {
    let flow = CongestionFlow::fast();
    let ds = flow.build_dataset(std::slice::from_ref(&module())).unwrap();
    let train =
        |kind| CongestionPredictor::train(kind, Target::Vertical, &ds, &TrainOptions::fast());
    for kind in [ModelKind::Linear, ModelKind::Ann, ModelKind::Gbrt] {
        let a = train(kind);
        let b = train(kind);
        let row = ds.features_of(0);
        assert_eq!(
            a.predict_features(row),
            b.predict_features(row),
            "{kind:?} must be deterministic"
        );
    }
}

#[test]
fn worker_count_does_not_change_dataset_or_models() {
    // The parallel dataset builder must be a pure speedup: one worker and
    // many workers produce the same samples in the same order, and models
    // trained on either dataset agree bit-for-bit.
    let modules: Vec<Module> = [
        "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
        "int32 h(int32 x, int32 y) { return (x * y) + (x - y) * 3; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("wd{i}")).unwrap())
    .collect();

    let serial = CongestionFlow::fast()
        .with_workers(1)
        .build_dataset(&modules)
        .unwrap();
    let parallel = CongestionFlow::fast()
        .with_workers(8)
        .build_dataset(&modules)
        .unwrap();

    // Identical sample order, features, and labels.
    assert_eq!(serial.samples.len(), parallel.samples.len());
    assert_eq!(serial.features(), parallel.features());
    for (a, b) in serial.samples.iter().zip(&parallel.samples) {
        assert_eq!((&a.design, a.func, a.op), (&b.design, b.func, b.op));
        assert_eq!(a.vertical.to_bits(), b.vertical.to_bits());
        assert_eq!(a.horizontal.to_bits(), b.horizontal.to_bits());
    }

    // Models trained on each agree on every row (CV folds and grid points
    // also run in parallel inside train, so this exercises that path too).
    for kind in [ModelKind::Linear, ModelKind::Gbrt] {
        let a = CongestionPredictor::train(kind, Target::Vertical, &serial, &TrainOptions::fast());
        let b =
            CongestionPredictor::train(kind, Target::Vertical, &parallel, &TrainOptions::fast());
        for i in 0..serial.len() {
            let row = serial.features_of(i);
            assert_eq!(
                a.predict_features(row).to_bits(),
                b.predict_features(row).to_bits(),
                "{kind:?} prediction differs between worker counts"
            );
        }
    }
}

#[test]
fn maze_router_is_deterministic_across_worker_counts() {
    // The rewritten maze kernel (A* + arena + incremental rerouting) must be
    // a pure function of the design: 1 worker and 8 workers produce
    // bit-identical congestion labels.
    let modules: Vec<Module> = [
        "int32 f(int32 a[32], int32 k) { int32 s = 0;\n#pragma HLS unroll factor=8\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("mz{i}")).unwrap())
    .collect();

    let run = |workers| {
        let mut flow = CongestionFlow::fast().with_workers(workers);
        flow.par.router = fpga_fabric::RouterOptions::with_maze(2);
        flow.build_dataset(&modules).unwrap()
    };
    let a = run(1);
    let b = run(8);
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!((&x.design, x.func, x.op), (&y.design, y.func, y.op));
        assert_eq!(x.vertical.to_bits(), y.vertical.to_bits());
        assert_eq!(x.horizontal.to_bits(), y.horizontal.to_bits());
    }
}

#[test]
fn pipelined_executor_matches_serial_byte_for_byte() {
    // The cross-stage pipelined executor must be a pure scheduling change:
    // the serialized CSV bytes — the strictest equality, catching even
    // `-0.0` vs `+0.0` — match the serial builder's at any queue depth and
    // worker count.
    let modules: Vec<Module> = [
        "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
        "int32 h(int32 x, int32 y) { return (x * y) + (x - y) * 3; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("pl{i}")).unwrap())
    .collect();

    let csv = |flow: CongestionFlow| {
        let ds = flow.build_dataset(&modules).unwrap();
        let mut bytes = Vec::new();
        congestion_core::persist::write_csv(&ds, &mut bytes).unwrap();
        bytes
    };
    let serial = csv(CongestionFlow::fast().with_workers(1));
    for (workers, depth) in [(1, 1), (2, 2), (8, 4)] {
        let pipelined = csv(CongestionFlow::fast()
            .with_workers(workers)
            .with_pipeline_depth(depth));
        assert_eq!(
            serial, pipelined,
            "pipelined ({workers} workers, depth {depth}) changed the dataset bytes"
        );
    }
}

#[test]
fn different_par_seeds_change_labels() {
    let flow = CongestionFlow::fast();
    let mut flow2 = CongestionFlow::fast();
    flow2.par = flow2.par.with_seed(999);
    let m = module();
    let a = flow.build_dataset(std::slice::from_ref(&m)).unwrap();
    let b = flow2.build_dataset(std::slice::from_ref(&m)).unwrap();
    assert_eq!(a.len(), b.len(), "same ops either way");
    let same = a
        .samples
        .iter()
        .zip(&b.samples)
        .filter(|(x, y)| x.vertical == y.vertical)
        .count();
    assert!(
        same < a.len(),
        "a different placement seed must move some labels"
    );
    // …but the features (HLS-level) are placement-independent.
    assert_eq!(a.features(), b.features());
}
