//! Reproducibility: identical seeds must produce bit-identical datasets,
//! placements, and model predictions across independent runs.

use fpga_hls_congestion::prelude::*;

fn module() -> Module {
    compile_named(
        "int32 f(int32 a[32], int32 k) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        "det",
    )
    .unwrap()
}

#[test]
fn dataset_is_reproducible() {
    let run = || {
        let flow = CongestionFlow::fast();
        flow.build_dataset(std::slice::from_ref(&module())).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.op, y.op);
        assert_eq!(x.features, y.features);
        assert_eq!(x.vertical, y.vertical);
        assert_eq!(x.horizontal, y.horizontal);
    }
}

#[test]
fn trained_models_are_reproducible() {
    let flow = CongestionFlow::fast();
    let ds = flow.build_dataset(std::slice::from_ref(&module())).unwrap();
    let train = |kind| {
        CongestionPredictor::train(kind, Target::Vertical, &ds, &TrainOptions::fast())
    };
    for kind in [ModelKind::Linear, ModelKind::Ann, ModelKind::Gbrt] {
        let a = train(kind);
        let b = train(kind);
        let row = &ds.samples[0].features;
        assert_eq!(
            a.predict_features(row),
            b.predict_features(row),
            "{kind:?} must be deterministic"
        );
    }
}

#[test]
fn different_par_seeds_change_labels() {
    let flow = CongestionFlow::fast();
    let mut flow2 = CongestionFlow::fast();
    flow2.par = flow2.par.with_seed(999);
    let m = module();
    let a = flow.build_dataset(std::slice::from_ref(&m)).unwrap();
    let b = flow2.build_dataset(std::slice::from_ref(&m)).unwrap();
    assert_eq!(a.len(), b.len(), "same ops either way");
    let same = a
        .samples
        .iter()
        .zip(&b.samples)
        .filter(|(x, y)| x.vertical == y.vertical)
        .count();
    assert!(
        same < a.len(),
        "a different placement seed must move some labels"
    );
    // …but the features (HLS-level) are placement-independent.
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.features, y.features);
    }
}
