//! Differential suite for the GBRT kernel pair and the compiled batched
//! inference engine (ISSUE 5).
//!
//! Two classes of guarantee, on data produced by the real paper pipeline
//! (HLS → placement → routing → back-traced congestion labels):
//!
//! * **Accuracy equivalence**: the histogram kernel's held-out MAE/MedAE
//!   stays within a pinned tolerance of `GbrtKernel::ReferenceExact` — the
//!   exact-split gold standard kept around forever, like the router's
//!   `ReferenceDijkstra` — so binning can never silently move Table IV.
//! * **Bitwise identity**: the compiled SoA node table (and every other
//!   model's batched path) predicts bit-for-bit what per-row `predict_one`
//!   predicts, across model families and seeds.

use fpga_hls_congestion::prelude::*;
use mlkit::metrics::{mae, medae};
use mlkit::{
    GbrtKernel, GbrtOptions, GbrtRegressor, Lasso, LassoOptions, MlpOptions, MlpRegressor,
    Regressor,
};

/// A small but real training suite: three designs with different loop
/// structure and partitioning, so the dataset has congestion spread.
fn paper_dataset() -> congestion_core::dataset::CongestionDataset {
    let modules: Vec<Module> = [
        "int32 f(int32 a[32], int32 k) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll factor=8\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
        "int32 h(int32 a[16], int32 b[16]) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * b[i]; } return s; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("diff{i}")).unwrap())
    .collect();
    CongestionFlow::fast().build_dataset(&modules).unwrap()
}

fn gbrt_opts(kernel: GbrtKernel, seed: u64) -> GbrtOptions {
    GbrtOptions {
        n_estimators: 120,
        kernel,
        seed,
        ..Default::default()
    }
}

#[test]
fn histogram_kernel_matches_reference_exact_within_tolerance() {
    let ds = paper_dataset();
    let (train, test) = ds.split(0.25, 42);
    for target in [Target::Vertical, Target::Horizontal] {
        let tr = train.to_ml(target);
        let te = test.to_ml(target);
        let eval = |kernel| {
            let mut m = GbrtRegressor::new(gbrt_opts(kernel, 11));
            m.fit(&tr.x, &tr.y);
            let pred = m.predict(&te.x);
            (mae(&te.y, &pred), medae(&te.y, &pred))
        };
        let (mae_h, medae_h) = eval(GbrtKernel::Histogram);
        let (mae_e, medae_e) = eval(GbrtKernel::ReferenceExact);
        // Pinned tolerance: held-out MAE/MedAE in percentage points of
        // congestion. The kernels see identical row/feature subsamples
        // (same RNG schedule), so any drift is pure binning error.
        // Observed when the kernels landed: Vertical 28.52 vs 30.07,
        // Horizontal 33.60 vs 35.62 (~6% relative). Pin at 12% / 25%.
        assert!(
            (mae_h - mae_e).abs() <= 0.12 * mae_e.max(1.0),
            "{target:?}: histogram MAE {mae_h:.4} vs exact {mae_e:.4}"
        );
        assert!(
            (medae_h - medae_e).abs() <= 0.25 * medae_e.max(1.0),
            "{target:?}: histogram MedAE {medae_h:.4} vs exact {medae_e:.4}"
        );
    }
}

#[test]
fn batched_predict_is_bit_identical_to_per_row_for_every_model() {
    let ds = paper_dataset();
    let ml = ds.to_ml(Target::Vertical);
    for seed in [1u64, 7, 23] {
        let models: Vec<(&str, Box<dyn Regressor>)> = vec![
            ("lasso", {
                let mut m = Lasso::new(LassoOptions::default());
                m.fit(&ml.x, &ml.y);
                Box::new(m)
            }),
            ("ann", {
                let mut m = MlpRegressor::new(MlpOptions {
                    epochs: 15,
                    seed,
                    ..Default::default()
                });
                m.fit(&ml.x, &ml.y);
                Box::new(m)
            }),
            ("gbrt-hist", {
                let mut m = GbrtRegressor::new(gbrt_opts(GbrtKernel::Histogram, seed));
                m.fit(&ml.x, &ml.y);
                Box::new(m)
            }),
            ("gbrt-exact", {
                let mut m = GbrtRegressor::new(gbrt_opts(GbrtKernel::ReferenceExact, seed));
                m.fit(&ml.x, &ml.y);
                Box::new(m)
            }),
        ];
        for (name, m) in &models {
            let batched = m.predict(&ml.x);
            let mut into = vec![f64::NAN; ml.x.rows()];
            m.predict_into(&ml.x, &mut into);
            for (i, row) in ml.x.iter_rows().enumerate() {
                let per_row = m.predict_one(row);
                assert_eq!(
                    batched[i].to_bits(),
                    per_row.to_bits(),
                    "{name} seed {seed} row {i}: batched {} != per-row {}",
                    batched[i],
                    per_row
                );
                assert_eq!(into[i].to_bits(), per_row.to_bits(), "{name} predict_into");
            }
        }
    }
}

#[test]
fn gbrt_kernel_flag_flows_through_the_pipeline() {
    // TrainOptions.gbrt_kernel must reach the fitted model: the two kernels
    // produce different (but both finite and sane) predictors end-to-end.
    let ds = paper_dataset();
    let (train, test) = ds.split(0.25, 42);
    let mut accs = Vec::new();
    for kernel in [GbrtKernel::Histogram, GbrtKernel::ReferenceExact] {
        let opts = TrainOptions {
            gbrt_kernel: kernel,
            ..TrainOptions::fast()
        };
        let p = CongestionPredictor::train(ModelKind::Gbrt, Target::Vertical, &train, &opts);
        let acc = p.evaluate(&test);
        assert!(acc.mae.is_finite() && acc.mae >= 0.0);
        accs.push(acc.mae);
    }
    assert!(
        (accs[0] - accs[1]).abs() <= 0.3 * accs[1].max(1.0),
        "kernels diverge end-to-end: hist {} vs exact {}",
        accs[0],
        accs[1]
    );
}

#[test]
fn golden_table4_gbrt_mae_band() {
    // Golden regression pin: GBRT held-out MAE on this fixed suite, split,
    // and effort must stay inside the band recorded when the histogram
    // kernel landed. A kernel change that moves the paper's Table IV
    // numbers fails loudly here.
    let ds = paper_dataset();
    let (train, test) = ds.split(0.25, 42);
    let opts = TrainOptions {
        effort: 0.5,
        ..TrainOptions::fast()
    };
    // Recorded at the delta-placer rewrite: Vertical 27.64, Horizontal
    // 9.51 (fast-flow labels; deterministic for this seed — the better
    // default placement routes with far less horizontal overflow, so the
    // horizontal labels got much easier). Band = roughly ±20%.
    let bands = [
        (Target::Vertical, 22.0, 33.0),
        (Target::Horizontal, 7.5, 11.5),
    ];
    for (target, lo, hi) in bands {
        let p = CongestionPredictor::train(ModelKind::Gbrt, target, &train, &opts);
        let acc = p.evaluate(&test);
        eprintln!(
            "golden {target:?}: mae={:.4} medae={:.4}",
            acc.mae, acc.medae
        );
        assert!(
            acc.mae >= lo && acc.mae <= hi,
            "{target:?} GBRT MAE {:.4} left the golden band [{lo}, {hi}]",
            acc.mae
        );
    }
}
