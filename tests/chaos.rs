//! Chaos-engineering contract tests for the supervised dataset pipeline.
//!
//! A canned fault plan injects a panic, a stage timeout, and a persistent
//! transient error into a four-design build; the contract is graceful
//! degradation — the build never aborts, healthy designs keep their
//! samples, and every casualty lands in the per-design failure taxonomy.
//! A second set of tests pins determinism (supervision logs bit-identical
//! across worker counts) and checkpoint/resume (a resumed run recomputes
//! nothing that already reached a verdict).

use fpga_hls_congestion::faultkit::FaultKind;
use fpga_hls_congestion::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const SRC: &str =
    "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }";

/// Four small copies of the same kernel under different names — the fault
/// plan tells them apart, the clean pipeline does not.
fn modules() -> Vec<Module> {
    ["alpha", "beta", "gamma", "delta"]
        .iter()
        .map(|name| compile_named(SRC, name).expect("kernel compiles"))
        .collect()
}

/// The canned chaos plan: `alpha` panics in the router on every attempt,
/// `beta` hits a persistent injected synthesis error, `gamma` is delayed
/// past the stage budget forever, and `delta` survives one injected
/// back-trace panic thanks to a retry.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(7)
        .with_rule(FaultRule::once("alpha", "route", FaultKind::Panic).for_attempts(u32::MAX))
        .with_rule(FaultRule::once("beta", "hls", FaultKind::Error).for_attempts(u32::MAX))
        .with_rule(
            FaultRule::once("gamma", "hls", FaultKind::Delay(Duration::from_millis(900)))
                .for_attempts(u32::MAX),
        )
        .with_rule(FaultRule::once("delta", "backtrace", FaultKind::Panic))
}

fn chaos_flow() -> CongestionFlow {
    let mut policy = SupervisorPolicy::no_sleep();
    policy.max_retries = 1;
    policy.stage_timeout = Some(Duration::from_millis(250));
    CongestionFlow::fast()
        .with_supervision(policy)
        .with_fault_plan(chaos_plan())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hls_congest_chaos_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

#[test]
fn chaos_build_degrades_gracefully_with_taxonomy() {
    let report = chaos_flow()
        .with_workers(4)
        .build_dataset_report(&modules());

    assert_eq!(report.designs.len(), 4);
    assert_eq!(
        report.succeeded(),
        1,
        "only delta survives:\n{}",
        report.render()
    );
    assert_eq!(report.failed(), 3);

    // Exactly one failure per taxonomy bucket.
    let taxonomy = report.failure_taxonomy();
    let buckets: Vec<(&str, usize)> = taxonomy.iter().map(|(k, &n)| (k.as_str(), n)).collect();
    assert_eq!(
        buckets,
        vec![("injected", 1), ("panic", 1), ("timeout", 1)],
        "unexpected taxonomy: {taxonomy:?}"
    );
    assert!(matches!(
        report.designs[0].outcome,
        Err(DesignFailure::Panic { .. })
    ));
    assert!(matches!(
        report.designs[1].outcome,
        Err(DesignFailure::Synth(_))
    ));
    assert!(matches!(
        report.designs[2].outcome,
        Err(DesignFailure::Timeout { .. })
    ));

    // delta needed a retry to shake off its injected back-trace panic.
    let delta = &report.designs[3];
    assert!(delta.is_ok());
    assert!(delta.retries() >= 1, "delta should have retried");

    // The surviving samples are exactly a clean build of delta.
    let clean = CongestionFlow::fast()
        .build_dataset(&[compile_named(SRC, "delta").unwrap()])
        .unwrap();
    assert_eq!(report.dataset.samples, clean.samples);

    // Counters landed in the merged metrics.
    let counters = &report.obs.metrics.counters;
    assert!(counters["faultkit.injected"] >= 4);
    assert!(counters["faultkit.retries"] >= 3);
    assert!(counters["faultkit.recovered_panics"] >= 1);
    assert!(counters["faultkit.timeouts"] >= 1);

    // The render names every bucket and the failed designs.
    let text = report.render();
    assert!(text.contains("failure taxonomy:"));
    for needle in ["injected", "panic", "timeout", "FAILED"] {
        assert!(text.contains(needle), "render missing `{needle}`:\n{text}");
    }
}

#[test]
fn chaos_outcomes_are_bit_identical_across_worker_counts() {
    // Wall-clock-free chaos (no stage timeout): everything the supervisor
    // records is a pure function of the plan, so 1 worker and 8 workers
    // must agree exactly — samples, outcomes, and full attempt logs.
    let plan = FaultPlan::new(11)
        .with_rule(FaultRule::once("alpha", "route", FaultKind::Panic).for_attempts(u32::MAX))
        .with_rule(FaultRule::once("beta", "hls", FaultKind::Error).for_attempts(u32::MAX))
        .with_rule(FaultRule::once("delta", "backtrace", FaultKind::Panic));
    let run = |workers| {
        CongestionFlow::fast()
            .with_supervision(SupervisorPolicy::no_sleep())
            .with_fault_plan(plan.clone())
            .with_workers(workers)
            .build_dataset_report(&modules())
    };
    let serial = run(1);
    let parallel = run(8);

    assert_eq!(serial.dataset.samples, parallel.dataset.samples);
    for (a, b) in serial.designs.iter().zip(&parallel.designs) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.outcome, b.outcome, "outcome diverged for {}", a.name);
        assert_eq!(
            a.supervision, b.supervision,
            "supervision log diverged for {}",
            a.name
        );
    }
    assert_eq!(
        serial.obs.metrics.deterministic_digest(),
        parallel.obs.metrics.deterministic_digest(),
        "chaos metrics must not depend on worker count"
    );
}

#[test]
fn resume_replays_every_committed_verdict() {
    let dir = fresh_dir("resume");
    let modules = modules();
    // beta fails permanently; the other three succeed.
    let plan = FaultPlan::new(3)
        .with_rule(FaultRule::once("beta", "hls", FaultKind::Error).for_attempts(u32::MAX));
    let flow = |resume| {
        CongestionFlow::fast()
            .with_supervision(SupervisorPolicy::no_sleep())
            .with_fault_plan(plan.clone())
            .with_checkpoint(&dir, resume)
    };

    let first = flow(false).build_dataset_report(&modules);
    assert_eq!(first.succeeded(), 3);
    assert_eq!(first.resumed(), 0);
    assert_eq!(first.obs.metrics.counters["checkpoint.stored"], 4);

    // Resume with the same configuration: every verdict — including
    // beta's failure — replays from the checkpoint; no stage runs.
    let second = flow(true).build_dataset_report(&modules);
    assert_eq!(second.resumed(), 4, "{}", second.render());
    assert_eq!(second.succeeded(), 3);
    assert_eq!(second.dataset.samples, first.dataset.samples);
    assert!(matches!(
        second.designs[1].outcome,
        Err(DesignFailure::Recorded(_))
    ));
    assert_eq!(
        second.obs.events.iter().filter(|e| e.name == "hls").count(),
        0,
        "a resumed run must not re-run any stage"
    );
    assert_eq!(second.obs.metrics.counters["checkpoint.resumed"], 4);
    assert_eq!(second.obs.metrics.counters.get("faultkit.injected"), None);
    assert!(second
        .render()
        .contains("resumed from checkpoint: 4 designs"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_run_resumes_only_the_missing_designs() {
    let dir = fresh_dir("killed");
    let modules = modules();
    let flow = |resume| {
        CongestionFlow::fast()
            .with_supervision(SupervisorPolicy::no_sleep())
            .with_checkpoint(&dir, resume)
    };

    let first = flow(false).build_dataset_report(&modules);
    assert_eq!(first.succeeded(), 4);

    // Simulate a SIGKILL that landed before gamma committed: delete its
    // checkpoint pair (rename-commit means a real kill leaves either both
    // files or neither).
    let mut removed = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("gamma-"))
        {
            std::fs::remove_file(&path).unwrap();
            removed += 1;
        }
    }
    assert_eq!(removed, 2, "expected gamma's csv + json pair");

    let second = flow(true).build_dataset_report(&modules);
    assert_eq!(second.resumed(), 3, "{}", second.render());
    assert_eq!(second.succeeded(), 4);
    // Exactly one design (gamma) went through the stages again.
    assert_eq!(
        second.obs.events.iter().filter(|e| e.name == "hls").count(),
        1
    );
    // Byte-for-byte the same dataset as the uninterrupted run.
    assert_eq!(second.dataset.samples, first.dataset.samples);

    // A configuration change invalidates the whole store: nothing resumes.
    let mut other = flow(true);
    other.hls.clock_ns = 8.0;
    let third = other.build_dataset_report(&modules);
    assert_eq!(third.resumed(), 0);

    std::fs::remove_dir_all(&dir).ok();
}
