//! Serving conformance harness for `congestd`: pins the scale-out layer
//! (request coalescing, the digest-keyed feature cache, the event-loop
//! front-end) to the per-request serving semantics it must not change.
//!
//! The conformance contract:
//!
//! * **Coalescing is invisible** — for a fixed request set, the replies
//!   produced under any micro-batch configuration (row budget, linger
//!   window, worker count) are **bitwise identical** to per-request
//!   serving. This holds by construction (the compiled ensemble
//!   accumulates per row in tree order regardless of batch shape) and is
//!   pinned here by brute-force comparison across the config matrix.
//! * **The batch partition is a pure function** of the queue contents at
//!   drain time and the row budget — [`coalesce_plan`] is the reference
//!   model the live drain must match.
//! * **Shedding is untouched by batching** — admission decides the shed
//!   set at push time ([`shed_plan`]), so the same arrival trace sheds
//!   the same ids whatever the drain-side batch budget.
//! * **The cache never time-travels** — a `source` reply is never built
//!   from features extracted before the most recent model swap, under
//!   arbitrary source/swap interleavings, and the `serve.cache.*`
//!   accounting always balances (`hits + misses == lookups`).
//! * **Front-ends are interchangeable** — the readiness-polled event loop
//!   and the thread-per-connection front-end produce bitwise-identical
//!   reply frames for the same pipelined request stream.

use fpga_hls_congestion::mlkit::CompiledEnsemble;
use fpga_hls_congestion::servekit::{
    coalesce_plan, read_frame, serve_event_loop, serve_tcp, shed_plan, write_frame, ModelArtifact,
    Reply, ReplyStatus, Request, RequestBody, ServeConfig, Server, SourceExtractor, TraceStep,
    WorkGate,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const LEAF: u32 = u32::MAX;
const FEATURES: usize = 6;

/// A deterministic two-tree ensemble per target with fractional leaves:
/// tree 0 splits feature 0 at 3.0, tree 1 splits feature 1 at 4.5. Small
/// enough to run thousands of times, structured enough that every row
/// lands on a distinct sum of leaf values.
fn artifact(version: u64) -> ModelArtifact {
    let nodes = vec![
        (0u32, 1, 2, 3.0),
        (LEAF, 0, 0, 10.25),
        (LEAF, 0, 0, 90.75),
        (1u32, 4, 5, 4.5),
        (LEAF, 0, 0, 0.125),
        (LEAF, 0, 0, 7.875),
    ];
    let mk = |base: f64| {
        CompiledEnsemble::from_raw(base, 1.0, vec![0, 3], nodes.clone(), FEATURES).unwrap()
    };
    ModelArtifact {
        name: "gbrt".into(),
        version,
        feature_count: FEATURES,
        trained_on: "conformance-test".into(),
        vertical: mk(1.0),
        horizontal: mk(0.5),
    }
}

/// Deterministic feature rows: splitmix-style mix keyed by (request, row,
/// col), values in [0, 10) so both split branches are exercised.
fn rows_for(req: usize, n_rows: usize) -> Vec<Vec<f64>> {
    let mix = |a: u64, b: u64, c: u64| {
        let mut z = a
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb));
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        z
    };
    (0..n_rows)
        .map(|r| {
            (0..FEATURES)
                .map(|c| (mix(req as u64, r as u64, c as u64) % 1000) as f64 / 100.0)
                .collect()
        })
        .collect()
}

/// A fixed mixed-shape request set: row counts cycle 1, 2, 5, 1, 3, ...
fn fixed_request_set(n: usize) -> Vec<Request> {
    let shapes = [1usize, 2, 5, 1, 3];
    (0..n)
        .map(|i| Request::predict(i as u64, rows_for(i, shapes[i % shapes.len()])))
        .collect()
}

fn reply_bits(r: &Reply) -> (u64, ReplyStatus, Vec<u64>, Vec<u64>, Vec<u32>) {
    (
        r.id,
        r.status,
        r.vertical.iter().map(|v| v.to_bits()).collect(),
        r.horizontal.iter().map(|v| v.to_bits()).collect(),
        r.lines.clone(),
    )
}

/// Pile `reqs` up behind a closed [`WorkGate`], open it, and collect every
/// reply in id order — so every run drains an identical queue and the
/// batch budget is the only variable.
fn gated_run(
    reqs: &[Request],
    batch_max_rows: usize,
    batch_max_wait_ms: u64,
    workers: usize,
) -> (Vec<Reply>, u64, u64) {
    let gate = Arc::new(WorkGate::closed());
    let mut cfg = ServeConfig {
        queue_capacity: reqs.len().max(8),
        workers,
        batch_max_rows,
        batch_max_wait: Duration::from_millis(batch_max_wait_ms),
        pace_gate: Some(gate.clone()),
        ..Default::default()
    };
    cfg.gate.expected_features = FEATURES;
    let (server, report) = Server::start(cfg, Some(artifact(1)), None).expect("start");
    assert!(report.install_error.is_none(), "{report:?}");
    let rxs: Vec<_> = reqs.iter().map(|r| server.submit(r.clone())).collect();
    gate.open();
    let mut replies: Vec<Reply> = rxs
        .into_iter()
        .map(|rx| rx.recv().expect("reply"))
        .collect();
    let summary = server.shutdown();
    replies.sort_by_key(|r| r.id);
    (replies, summary.metrics.batches, summary.metrics.coalesced)
}

#[test]
fn coalesced_replies_are_bitwise_identical_across_batch_configs_and_workers() {
    let reqs = fixed_request_set(48);
    let (baseline, base_batches, _) = gated_run(&reqs, 1, 0, 1);
    assert_eq!(base_batches, 0, "budget 1 must never coalesce");
    assert!(baseline.iter().all(|r| r.status == ReplyStatus::Ok));
    let baseline_bits: Vec<_> = baseline.iter().map(reply_bits).collect();
    let mut coalesced_somewhere = false;
    for &budget in &[1usize, 64, 4096] {
        for &wait_ms in &[0u64, 5] {
            for &workers in &[1usize, 2, 4, 8] {
                let (replies, batches, _) = gated_run(&reqs, budget, wait_ms, workers);
                coalesced_somewhere |= batches > 0;
                let bits: Vec<_> = replies.iter().map(reply_bits).collect();
                assert_eq!(
                    bits, baseline_bits,
                    "replies diverged at budget={budget} wait={wait_ms}ms workers={workers}"
                );
            }
        }
    }
    assert!(
        coalesced_somewhere,
        "the config matrix never actually formed a batch"
    );
}

#[test]
fn batch_partition_matches_coalesce_plan_for_a_piled_queue() {
    // Single-row requests, one worker: the drain partition over a fully
    // piled queue is exactly coalesce_plan(budget, all-ones).
    let n = 30usize;
    let reqs: Vec<Request> = (0..n)
        .map(|i| Request::predict(i as u64, rows_for(i, 1)))
        .collect();
    for &budget in &[2usize, 8, 64] {
        let (replies, batches, coalesced) = gated_run(&reqs, budget, 0, 1);
        assert!(replies.iter().all(|r| r.status == ReplyStatus::Ok));
        let plan = coalesce_plan(budget, &vec![1usize; n]);
        let planned_batches = plan.iter().filter(|b| b.len() > 1).count() as u64;
        let planned_coalesced: u64 = plan
            .iter()
            .filter(|b| b.len() > 1)
            .map(|b| b.len() as u64)
            .sum();
        assert_eq!(batches, planned_batches, "budget={budget}");
        assert_eq!(coalesced, planned_coalesced, "budget={budget}");
    }
}

#[test]
fn shed_set_is_untouched_by_the_batch_budget() {
    // Admission sheds at push time, so the shed set for one burst is a
    // pure function of (trace, capacity) — whatever the drain-side batch
    // budget. shed_plan is the reference model.
    let capacity = 8usize;
    let n = 24usize;
    let trace = [TraceStep {
        arrivals: n as u64,
        drains: 0,
    }];
    let (_, planned_shed) = shed_plan(capacity, &trace);
    let planned: BTreeSet<u64> = planned_shed.into_iter().collect();
    assert!(!planned.is_empty(), "burst must overflow the queue");
    for &budget in &[1usize, 64] {
        let gate = Arc::new(WorkGate::closed());
        let mut cfg = ServeConfig {
            queue_capacity: capacity,
            workers: 1,
            batch_max_rows: budget,
            pace_gate: Some(gate.clone()),
            ..Default::default()
        };
        cfg.gate.expected_features = FEATURES;
        let (server, _) = Server::start(cfg, Some(artifact(1)), None).expect("start");
        let rxs: Vec<_> = (0..n)
            .map(|i| server.submit(Request::predict(i as u64, rows_for(i, 1))))
            .collect();
        gate.open();
        let mut shed = BTreeSet::new();
        for (id, rx) in rxs.into_iter().enumerate() {
            let reply = rx.recv().expect("reply");
            match reply.status {
                ReplyStatus::Overloaded => {
                    shed.insert(id as u64);
                }
                ReplyStatus::Ok => {}
                other => panic!("unexpected status {other:?} for id {id}"),
            }
        }
        server.shutdown();
        assert_eq!(shed, planned, "shed set diverged at budget={budget}");
    }
}

/// Unique scratch dir per call site (process-wide counter, cleaned by the
/// caller).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "serve_conformance_{tag}_{}_{n}",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary source/swap interleavings: a reply must never be built
    /// from a cache entry that predates the latest swap, and the cache
    /// accounting must balance exactly.
    ///
    /// The extractor stamps every extraction with a monotone epoch that
    /// is bumped immediately before each swap, and reports it through
    /// `reply.lines` — so a stale (pre-swap) cache entry is directly
    /// visible as an old epoch on the wire.
    #[test]
    fn cache_never_serves_pre_swap_entries(ops in prop::collection::vec(0u8..8, 1..24)) {
        let dir = scratch("proptest");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let epoch = Arc::new(AtomicU64::new(1));
        let extractor_epoch = epoch.clone();
        let extractor: Arc<SourceExtractor> = Arc::new(move |name: &str, _text: &str| {
            let e = extractor_epoch.load(Ordering::SeqCst);
            let d = name.len() as u64; // design-dependent row count
            let rows: Vec<Vec<f64>> = (0..2 + d % 2)
                .map(|r| (0..FEATURES).map(|c| (r * 7 + c as u64 + d) as f64 % 10.0).collect())
                .collect();
            let lines = vec![e as u32; rows.len()];
            Ok((rows, lines))
        });
        let mut cfg = ServeConfig { workers: 1, ..Default::default() };
        cfg.gate.expected_features = FEATURES;
        let (server, report) =
            Server::start(cfg, Some(artifact(1)), Some(extractor)).expect("start");
        prop_assert!(report.install_error.is_none(), "{report:?}");

        let mut version = 1u64;
        let mut active = artifact(1).display_name();
        // Designs extracted since the last swap (they must now hit).
        let mut warm: BTreeSet<u64> = BTreeSet::new();
        let mut source_ops = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let id = i as u64 + 10;
            if *op < 6 {
                let d = u64::from(*op % 3);
                let reply = server.call(Request {
                    id,
                    deadline_ms: None,
                    body: RequestBody::Source {
                        name: format!("design-{d}"),
                        text: format!("// design {d}"),
                    },
                });
                source_ops += 1;
                prop_assert_eq!(reply.status, ReplyStatus::Ok, "{:?}", reply);
                prop_assert_eq!(&reply.model, &active, "{:?}", reply);
                // The epoch stamped on the reply is the current one: the
                // features were extracted after the latest swap.
                let current = epoch.load(Ordering::SeqCst) as u32;
                prop_assert!(
                    reply.lines.iter().all(|&l| l == current),
                    "stale cache entry served: lines {:?}, epoch {}", reply.lines, current
                );
                let expect = if warm.contains(&d) { "hit" } else { "miss" };
                prop_assert_eq!(
                    reply.info.get("cache").map(String::as_str),
                    Some(expect),
                    "design {} warm={:?}", d, warm
                );
                warm.insert(d);
            } else {
                // Swap: bump the epoch first, then install. The worker is
                // idle between calls, so no extraction straddles the bump.
                epoch.fetch_add(1, Ordering::SeqCst);
                version += 1;
                let v = artifact(version);
                let path = dir.join(format!("v{version}.json"));
                v.save(&path).expect("save artifact");
                let reply = server.call(Request {
                    id,
                    deadline_ms: None,
                    body: RequestBody::Swap { path: path.to_string_lossy().into_owned() },
                });
                prop_assert_eq!(reply.status, ReplyStatus::Ok, "{:?}", reply);
                active = v.display_name();
                warm.clear();
            }
        }
        let stats = server.cache_stats();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(stats.hits + stats.misses, stats.lookups, "{:?}", stats);
        prop_assert_eq!(stats.lookups, source_ops, "{:?}", stats);
    }
}

/// Send `frames` over one connection to a front-end, pipelined (all
/// writes before any read), and return the decoded replies in arrival
/// order.
fn roundtrip(addr: std::net::SocketAddr, frames: &[String]) -> Vec<Reply> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for f in frames {
        write_frame(&mut stream, f).expect("write frame");
    }
    let mut out = Vec::with_capacity(frames.len());
    for _ in 0..frames.len() {
        let json = read_frame(&mut stream)
            .expect("read frame")
            .expect("reply frame");
        out.push(Reply::from_json(&json).expect("decode reply"));
    }
    out
}

#[test]
fn event_loop_and_threaded_frontends_serve_identical_reply_frames() {
    let reqs = fixed_request_set(12);
    let frames: Vec<String> = reqs.iter().map(Request::to_json).collect();
    let mut per_frontend: Vec<Vec<_>> = Vec::new();
    for use_event_loop in [false, true] {
        let mut cfg = ServeConfig {
            queue_capacity: 64,
            workers: 2,
            ..Default::default()
        };
        cfg.gate.expected_features = FEATURES;
        let (server, _) = Server::start(cfg, Some(artifact(1)), None).expect("start");
        let server = Arc::new(server);
        let (tx, rx) = mpsc::channel();
        let net = {
            let server = server.clone();
            std::thread::spawn(move || {
                let serve = if use_event_loop {
                    serve_event_loop
                } else {
                    serve_tcp
                };
                serve(server, "127.0.0.1:0", move |a| tx.send(a).unwrap()).expect("serve");
            })
        };
        let addr = rx.recv_timeout(Duration::from_secs(10)).expect("bound");
        let replies = roundtrip(addr, &frames);
        assert!(
            replies.iter().all(|r| r.status == ReplyStatus::Ok),
            "front-end event_loop={use_event_loop}: {replies:?}"
        );
        per_frontend.push(replies.iter().map(reply_bits).collect());
        server.shutdown();
        net.join().expect("front-end thread");
    }
    assert_eq!(
        per_frontend[0], per_frontend[1],
        "event-loop replies diverged from thread-per-connection replies"
    );
}
