//! Observability contract tests.
//!
//! Two guarantees are pinned here: (1) the metrics snapshot attached to a
//! dataset build is **bit-identical for any worker count** — per-design
//! collectors merge in input order, and wall-clock values are quarantined
//! in gauges / `*_ms` histograms that `deterministic_digest` excludes; and
//! (2) the Chrome trace export keeps the trace-event fields
//! (`name`/`ph`/`ts`/`dur`/`pid`/`tid`) that chrome://tracing and Perfetto
//! require.

use fpga_hls_congestion::obskit;
use fpga_hls_congestion::obskit::QuantileSketch;
use fpga_hls_congestion::prelude::*;
use proptest::prelude::*;

/// A Rosetta suite group (face detection, no directives) plus two small
/// inline designs: enough shape diversity to exercise every stage span
/// without making the 1-vs-8-worker double build slow.
fn modules() -> Vec<Module> {
    let fd = rosetta_gen::suite::face_detection_group(rosetta_gen::Preset::Plain)
        .build()
        .expect("suite generator must compile");
    let small = [
        "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("obs{i}")).unwrap());
    std::iter::once(fd).chain(small).collect()
}

#[test]
fn metrics_snapshot_is_bit_identical_across_worker_counts() {
    let modules = modules();
    let run = |workers| {
        CongestionFlow::fast()
            .with_workers(workers)
            .build_dataset_report(&modules)
    };
    let serial = run(1);
    let parallel = run(8);

    let a = serial.obs.metrics.deterministic_digest();
    let b = parallel.obs.metrics.deterministic_digest();
    assert!(!a.is_empty());
    assert_eq!(a, b, "metrics digest must not depend on worker count");

    // The digest covers counters and deterministic histograms; the full
    // counter maps must also agree key-for-key and value-for-value.
    assert_eq!(serial.obs.metrics.counters, parallel.obs.metrics.counters);
    assert_eq!(
        serial.obs.metrics.counters["dataset.designs"],
        modules.len() as u64
    );
    assert!(serial.obs.metrics.counters["dataset.samples"] > 0);
    assert!(serial.obs.metrics.counters.contains_key("route.conns"));

    // The per-pass overflow convergence curve is made of tile counts, not
    // wall-clock, so its buckets are part of the deterministic contract.
    let h = &serial.obs.metrics.histograms["route.pass_overflow"];
    let hp = &parallel.obs.metrics.histograms["route.pass_overflow"];
    assert_eq!(h.counts, hp.counts);
    assert_eq!(h.sum.to_bits(), hp.sum.to_bits());
}

#[test]
fn chrome_trace_export_keeps_pinned_fields() {
    let modules = modules();
    let report = CongestionFlow::fast().build_dataset_report(&modules[1..2]);
    let trace = obskit::sink::chrome_trace_json(&report.obs.events);

    // Golden schema: the exact fields chrome://tracing / Perfetto parse.
    for field in [
        "\"traceEvents\":[",
        "\"name\":",
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":1",
        "\"tid\":",
    ] {
        assert!(trace.contains(field), "missing {field} in trace:\n{trace}");
    }

    // One span per pipeline stage, nested under the per-design span, plus
    // the root dataset_build span.
    for span in [
        "dataset_build",
        "design",
        "hls",
        "place",
        "route",
        "congestion",
        "timing",
        "features",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "missing span {span} in trace:\n{trace}"
        );
    }
    assert!(
        trace.contains("\"design\":\"obs0\""),
        "design span must carry the design name:\n{trace}"
    );
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());
}

#[test]
fn fingerprint_and_ledger_are_bit_identical_across_worker_counts() {
    // The quality-sentinel artifacts inherit the worker-count determinism
    // contract: the dataset fingerprint (per-column sketches + matrix
    // digest) and the deterministic half of a ledger record serialize to
    // the same bytes whether the build ran on 1 worker or 8.
    let modules = modules();
    let run = |workers| {
        CongestionFlow::fast()
            .with_workers(workers)
            .build_dataset_report(&modules)
    };
    let serial = run(1);
    let parallel = run(8);

    let fp_serial = serial.dataset.fingerprint();
    let fp_parallel = parallel.dataset.fingerprint();
    assert_eq!(
        fp_serial.matrix_digest, fp_parallel.matrix_digest,
        "matrix digest must not depend on worker count"
    );
    assert_eq!(
        fp_serial.to_json(),
        fp_parallel.to_json(),
        "full fingerprint serialization must be byte-identical"
    );
    // ... and the fingerprint round-trips through its own JSON.
    let reparsed =
        congestion_core::DatasetFingerprint::from_json(&fp_serial.to_json()).expect("round-trip");
    assert_eq!(reparsed.to_json(), fp_serial.to_json());
    let report = congestion_core::drift(&fp_serial, &fp_parallel).expect("same columns");
    assert!(report.identical && !report.severe());

    // Ledger records built from the two runs agree on every deterministic
    // field (counters; kernels; identity stamps). Gauges and stage
    // timings are wall-clock and excluded, same as the metrics digest.
    let record = |report: &congestion_core::pipeline::DatasetBuildReport| {
        let mut rec = obskit::RunRecord::new("test", "dataset", "0.0.0", "deadbeef");
        rec.kernel("extract", "soa");
        rec.absorb_metrics(&report.obs.metrics);
        rec.gauges.clear(); // wall-clock
        rec.hists
            .retain(|k, _| !k.ends_with("_ms") && !k.ends_with("_us") && !k.ends_with("_ns"));
        rec.to_json_line()
    };
    assert_eq!(record(&serial), record(&parallel));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sketch_merge_is_invariant_to_partitioning(
        values in prop::collection::vec(-1e6f64..1e6, 1..200),
        parts in 1usize..9,
    ) {
        // Satellite contract: merging per-worker sketches (chunks merged
        // in input order, the parkit rule) yields bin-for-bin the same
        // sketch as one stream, for any worker count. Quantiles are then
        // bit-identical.
        let mut single = QuantileSketch::new();
        for v in &values {
            single.observe(*v);
        }
        let chunk = values.len().div_ceil(parts);
        let mut merged = QuantileSketch::new();
        for c in values.chunks(chunk.max(1)) {
            let mut unit = QuantileSketch::new();
            for v in c {
                unit.observe(*v);
            }
            merged.merge(&unit);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.zero_count(), single.zero_count());
        prop_assert_eq!(
            merged.pos_bins().collect::<Vec<_>>(),
            single.pos_bins().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            merged.neg_bins().collect::<Vec<_>>(),
            single.neg_bins().collect::<Vec<_>>()
        );
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                merged.quantile(q).to_bits(),
                single.quantile(q).to_bits(),
                "quantile {} differs", q
            );
        }
    }
}

#[test]
fn metrics_json_export_is_versioned_and_attributable() {
    let report = CongestionFlow::fast().build_dataset_report(&modules()[1..2]);
    let json = obskit::sink::metrics_json(
        &report.obs.metrics,
        &[("tool", "test-harness"), ("version", "0.0.0")],
    );
    assert!(json.contains("\"schema\": \"obskit.metrics.v1\""));
    assert!(json.contains("\"tool\": \"test-harness\""));
    assert!(json.contains("\"dataset.samples\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
