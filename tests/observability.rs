//! Observability contract tests.
//!
//! Two guarantees are pinned here: (1) the metrics snapshot attached to a
//! dataset build is **bit-identical for any worker count** — per-design
//! collectors merge in input order, and wall-clock values are quarantined
//! in gauges / `*_ms` histograms that `deterministic_digest` excludes; and
//! (2) the Chrome trace export keeps the trace-event fields
//! (`name`/`ph`/`ts`/`dur`/`pid`/`tid`) that chrome://tracing and Perfetto
//! require.

use fpga_hls_congestion::obskit;
use fpga_hls_congestion::prelude::*;

/// A Rosetta suite group (face detection, no directives) plus two small
/// inline designs: enough shape diversity to exercise every stage span
/// without making the 1-vs-8-worker double build slow.
fn modules() -> Vec<Module> {
    let fd = rosetta_gen::suite::face_detection_group(rosetta_gen::Preset::Plain)
        .build()
        .expect("suite generator must compile");
    let small = [
        "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
        "int32 g(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| compile_named(s, &format!("obs{i}")).unwrap());
    std::iter::once(fd).chain(small).collect()
}

#[test]
fn metrics_snapshot_is_bit_identical_across_worker_counts() {
    let modules = modules();
    let run = |workers| {
        CongestionFlow::fast()
            .with_workers(workers)
            .build_dataset_report(&modules)
    };
    let serial = run(1);
    let parallel = run(8);

    let a = serial.obs.metrics.deterministic_digest();
    let b = parallel.obs.metrics.deterministic_digest();
    assert!(!a.is_empty());
    assert_eq!(a, b, "metrics digest must not depend on worker count");

    // The digest covers counters and deterministic histograms; the full
    // counter maps must also agree key-for-key and value-for-value.
    assert_eq!(serial.obs.metrics.counters, parallel.obs.metrics.counters);
    assert_eq!(
        serial.obs.metrics.counters["dataset.designs"],
        modules.len() as u64
    );
    assert!(serial.obs.metrics.counters["dataset.samples"] > 0);
    assert!(serial.obs.metrics.counters.contains_key("route.conns"));

    // The per-pass overflow convergence curve is made of tile counts, not
    // wall-clock, so its buckets are part of the deterministic contract.
    let h = &serial.obs.metrics.histograms["route.pass_overflow"];
    let hp = &parallel.obs.metrics.histograms["route.pass_overflow"];
    assert_eq!(h.counts, hp.counts);
    assert_eq!(h.sum.to_bits(), hp.sum.to_bits());
}

#[test]
fn chrome_trace_export_keeps_pinned_fields() {
    let modules = modules();
    let report = CongestionFlow::fast().build_dataset_report(&modules[1..2]);
    let trace = obskit::sink::chrome_trace_json(&report.obs.events);

    // Golden schema: the exact fields chrome://tracing / Perfetto parse.
    for field in [
        "\"traceEvents\":[",
        "\"name\":",
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":1",
        "\"tid\":",
    ] {
        assert!(trace.contains(field), "missing {field} in trace:\n{trace}");
    }

    // One span per pipeline stage, nested under the per-design span, plus
    // the root dataset_build span.
    for span in [
        "dataset_build",
        "design",
        "hls",
        "place",
        "route",
        "congestion",
        "timing",
        "features",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "missing span {span} in trace:\n{trace}"
        );
    }
    assert!(
        trace.contains("\"design\":\"obs0\""),
        "design span must carry the design name:\n{trace}"
    );
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());
}

#[test]
fn metrics_json_export_is_versioned_and_attributable() {
    let report = CongestionFlow::fast().build_dataset_report(&modules()[1..2]);
    let json = obskit::sink::metrics_json(
        &report.obs.metrics,
        &[("tool", "test-harness"), ("version", "0.0.0")],
    );
    assert!(json.contains("\"schema\": \"obskit.metrics.v1\""));
    assert!(json.contains("\"tool\": \"test-harness\""));
    assert!(json.contains("\"dataset.samples\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
