//! Golden tests for the routing kernel rewrite.
//!
//! The default (non-maze) router must stay **bit-identical** run to run:
//! the checksums below pin the plain-Dijkstra route of the default
//! (delta-kernel) placement, because every congestion label in every
//! dataset depends on them. They were re-recorded at the delta-placer
//! rewrite (better placements route differently).
//!
//! The maze path (A* + windows + negotiated congestion) is allowed to pick
//! different wires, but must never leave *more* overflowed tiles than the
//! old full-grid Dijkstra maze did on the same design.

use fpga_fabric::par::{run_par, ParOptions};
use fpga_fabric::{Device, RouterOptions};
use hls_ir::frontend::compile_named;
use hls_ir::module::Module;
use hls_synth::{HlsFlow, HlsOptions};
use rosetta_gen::face_detection::{benchmark, FdVariant};

/// (name, module, default-router usage checksum, default overflowed tiles,
/// old-maze overflowed tiles ceiling).
fn corpus() -> Vec<(&'static str, Module, u64, usize, usize)> {
    let src = |s: &str, n: &str| compile_named(s, n).unwrap();
    vec![
        (
            "mac16",
            src(
                "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
                "mac16",
            ),
            0x9eaf_3dec_5fbf_a324,
            0,
            0,
        ),
        (
            "unroll64",
            src(
                "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
                "unroll64",
            ),
            0xf0bf_2ac1_e949_d125,
            187,
            21,
        ),
        (
            "wide256",
            src(
                "int32 f(int32 a[256], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=16\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 256; i++) { s = s + a[i] * k; } return s; }",
                "wide256",
            ),
            0x41a8_40f3_412b_3e56,
            1,
            0,
        ),
    ]
}

#[test]
fn default_router_matches_recorded_golden_checksums() {
    let device = Device::xc7z020();
    for (name, module, hash, tiles_over, _) in corpus() {
        let design = HlsFlow::new(HlsOptions::default()).run(&module).unwrap();
        let r = run_par(&design, &device, &ParOptions::fast());
        assert_eq!(
            r.route.usage_checksum(),
            hash,
            "{name}: default-mode routing changed — congestion labels would drift"
        );
        assert_eq!(r.congestion.tiles_over(100.0), tiles_over, "{name}");
    }
}

#[test]
fn maze_router_never_leaves_more_overflow_than_old_kernel() {
    let device = Device::xc7z020();
    for (name, module, _, _, old_maze_over) in corpus() {
        let design = HlsFlow::new(HlsOptions::default()).run(&module).unwrap();
        let mut opts = ParOptions::fast();
        opts.router = RouterOptions::with_maze(2);
        let r = run_par(&design, &device, &opts);
        assert!(
            r.congestion.tiles_over(100.0) <= old_maze_over,
            "{name}: A* maze left {} overflowed tiles, old kernel left {old_maze_over}",
            r.congestion.tiles_over(100.0)
        );
    }
}

#[test]
#[ignore = "slow: routes the largest in-tree design twice"]
fn maze_router_improves_on_old_kernel_for_face_detection() {
    // fd_opt is the only in-tree design congested enough that the two maze
    // kernels converge differently; the windowed A* with improve-based
    // acceptance must do no worse than the old full-grid Dijkstra (2213
    // overflowed tiles recorded at the delta-placer rewrite; the default
    // router leaves 2269).
    let module = benchmark(FdVariant::Optimized).build().unwrap();
    let design = HlsFlow::new(HlsOptions::default()).run(&module).unwrap();
    let device = Device::xc7z020();
    assert_eq!(
        run_par(&design, &device, &ParOptions::fast())
            .route
            .usage_checksum(),
        0x3d88_d140_345c_4c52,
        "fd_opt: default-mode routing changed"
    );
    let mut opts = ParOptions::fast();
    opts.router = RouterOptions::with_maze(2);
    let r = run_par(&design, &device, &opts);
    assert!(r.congestion.tiles_over(100.0) <= 2213);
}
