//! Differential tests for the placement-kernel rewrite.
//!
//! The delta-cost kernel maintains the annealing cost incrementally
//! (cached net bounding boxes, exact overlap-aware density deltas); these
//! tests prove the maintained value is the *true* cost — it matches a
//! from-scratch recompute to 1e-6 relative — for both kernels, that the
//! default placement is pinned by a golden checksum, and that the delta
//! kernel never leaves more routed overflow than the reference annealer
//! it replaced.

use fpga_fabric::par::{run_par, ParOptions};
use fpga_fabric::place::{place, recompute_cost, PlaceKernel, PlacerOptions};
use fpga_fabric::Device;
use hls_ir::frontend::compile_named;
use hls_ir::module::Module;
use hls_synth::{HlsFlow, HlsOptions, SynthesizedDesign};

/// (name, module, golden default-kernel placement checksum).
fn corpus() -> Vec<(&'static str, Module, u64)> {
    let src = |s: &str, n: &str| compile_named(s, n).unwrap();
    vec![
        (
            "mac16",
            src(
                "int32 f(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
                "mac16",
            ),
            GOLDEN_MAC16,
        ),
        (
            "unroll64",
            src(
                "int32 f(int32 a[64], int32 k) {\n#pragma HLS array_partition variable=a complete\nint32 s = 0;\n#pragma HLS unroll\nfor (i = 0; i < 64; i++) { s = s + a[i] * k; } return s; }",
                "unroll64",
            ),
            GOLDEN_UNROLL64,
        ),
        (
            "wide256",
            src(
                "int32 f(int32 a[256], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=16\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 256; i++) { s = s + a[i] * k; } return s; }",
                "wide256",
            ),
            GOLDEN_WIDE256,
        ),
    ]
}

/// Golden `Placement::position_checksum()` values for the default kernel
/// under `ParOptions::fast()` placer options. Recorded at the delta-kernel
/// rewrite; every congestion label downstream depends on placement, so a
/// drift here means datasets change.
const GOLDEN_MAC16: u64 = 0x0484_1af7_df51_e4c6;
const GOLDEN_UNROLL64: u64 = 0xa3e5_cb65_8b49_e5ef;
const GOLDEN_WIDE256: u64 = 0x38fb_aa5d_46a8_ca3c;

fn synth(module: &Module) -> SynthesizedDesign {
    HlsFlow::new(HlsOptions::default()).run(module).unwrap()
}

#[test]
fn incremental_cost_matches_full_recompute_for_both_kernels() {
    let device = Device::xc7z020();
    for (name, module, _) in corpus() {
        let design = synth(&module);
        for kernel in [PlaceKernel::DeltaAnneal, PlaceKernel::ReferenceAnneal] {
            for seed in [1u64, 7, 23] {
                let mut opts = PlacerOptions::fast().with_kernel(kernel);
                opts.seed = seed;
                let p = place(&design.rtl, &device, &opts);
                let full = recompute_cost(&design.rtl, &device, &opts, &p);
                assert!(
                    (p.cost - full).abs() <= 1e-6 * full.abs().max(1.0),
                    "{name} {kernel:?} seed {seed}: incremental cost {} drifted from recompute {}",
                    p.cost,
                    full
                );
            }
        }
    }
}

#[test]
fn default_kernel_matches_recorded_golden_placement_checksums() {
    let device = Device::xc7z020();
    for (name, module, golden) in corpus() {
        let design = synth(&module);
        let p = place(&design.rtl, &device, &PlacerOptions::fast());
        assert_eq!(
            p.position_checksum(),
            golden,
            "{name}: default-kernel placement changed (got {:#018x}) — congestion labels would drift",
            p.position_checksum()
        );
    }
}

#[test]
fn delta_kernel_never_leaves_more_routed_overflow_than_reference() {
    // The no-more-overflow guarantee is stated for the full annealing
    // budget (the conditions `BENCH_place.json` records); at reduced
    // budgets both kernels sit on the route-or-not margin and single-tile
    // noise dominates.
    let device = Device::xc7z020();
    for (name, module, _) in corpus() {
        let design = synth(&module);
        let run = |kernel: PlaceKernel| {
            let mut opts = ParOptions::default();
            opts.placer.kernel = kernel;
            run_par(&design, &device, &opts)
                .congestion
                .tiles_over(100.0)
        };
        let delta = run(PlaceKernel::DeltaAnneal);
        let reference = run(PlaceKernel::ReferenceAnneal);
        assert!(
            delta <= reference,
            "{name}: delta placement routed to {delta} overflowed tiles, reference to {reference}"
        );
    }
}

#[test]
fn both_kernels_are_deterministic_per_seed() {
    let device = Device::xc7z020();
    let (_, module, _) = corpus().remove(1);
    let design = synth(&module);
    for kernel in [PlaceKernel::DeltaAnneal, PlaceKernel::ReferenceAnneal] {
        let opts = PlacerOptions::fast().with_kernel(kernel);
        let a = place(&design.rtl, &device, &opts);
        let b = place(&design.rtl, &device, &opts);
        assert_eq!(a.pos, b.pos, "{kernel:?}");
        assert_eq!(a.cost, b.cost, "{kernel:?}");
        assert_eq!(a.stats, b.stats, "{kernel:?}");
    }
}

#[test]
fn delta_kernel_spends_less_annealing_effort() {
    // The point of the rewrite: the delta kernel refines an analytic start
    // with a short cold schedule instead of melting a column snake, so its
    // proposal count must be well below the reference budget.
    let device = Device::xc7z020();
    let (_, module, _) = corpus().remove(1);
    let design = synth(&module);
    let p = |kernel| {
        place(
            &design.rtl,
            &device,
            &PlacerOptions::fast().with_kernel(kernel),
        )
    };
    let delta = p(PlaceKernel::DeltaAnneal);
    let reference = p(PlaceKernel::ReferenceAnneal);
    assert!(
        delta.stats.proposed * 2 < reference.stats.proposed,
        "delta proposed {} vs reference {}",
        delta.stats.proposed,
        reference.stats.proposed
    );
    assert!(delta.stats.bbox_recomputes > 0);
    // The reference kernel rescans every incident net twice per proposal
    // (before/after HPWL), and the delta kernel's cached boxes must make it
    // strictly cheaper per unit of search effort.
    assert!(
        reference.stats.bbox_recomputes >= 2 * reference.stats.proposed,
        "reference rescans unrecorded: {} rescans for {} proposals",
        reference.stats.bbox_recomputes,
        reference.stats.proposed
    );
    assert!(delta.stats.bbox_recomputes < reference.stats.bbox_recomputes);
}
