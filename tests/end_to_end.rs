//! Cross-crate integration: the full training + prediction pipeline on
//! small designs, exercising every crate through the public facade.

use fpga_hls_congestion::prelude::*;

const KERNELS: [&str; 4] = [
    "int32 mac(int32 a[16], int32 k) { int32 s = 0; for (i = 0; i < 16; i++) { s = s + a[i] * k; } return s; }",
    "int32 red(int32 a[32]) { int32 s = 0;\n#pragma HLS unroll factor=4\nfor (i = 0; i < 32; i++) { s = s + a[i]; } return s; }",
    "int32 cmp(int32 x, int32 y) { int32 m = max(x, y); int32 n = min(x, y); return m - n + abs(x); }",
    "int32 pc(int64 a[8]) { int32 s = 0; for (i = 0; i < 8; i++) { s = s + popcount(a[i]); } return s; }",
];

fn fast_flow() -> CongestionFlow {
    CongestionFlow::fast()
}

fn modules() -> Vec<Module> {
    KERNELS
        .iter()
        .enumerate()
        .map(|(i, s)| compile_named(s, &format!("k{i}")).expect("kernel compiles"))
        .collect()
}

#[test]
fn training_and_prediction_pipeline() {
    let flow = fast_flow();
    let dataset = flow.build_dataset(&modules()).expect("dataset builds");
    assert!(dataset.len() > 30, "dataset size {}", dataset.len());

    // Every sample has the full, finite feature vector and sane labels.
    assert_eq!(dataset.features().cols(), congestion_core::FEATURE_COUNT);
    for (i, s) in dataset.samples.iter().enumerate() {
        assert!(dataset.features_of(i).iter().all(|v| v.is_finite()));
        assert!(s.vertical >= 0.0 && s.vertical < 1000.0);
        assert!(s.horizontal >= 0.0 && s.horizontal < 1000.0);
    }

    let filtered = filter_marginal(&dataset, &FilterOptions::default());
    let (train, test) = filtered.kept.split(0.25, 3);
    let model = CongestionPredictor::train(
        ModelKind::Gbrt,
        Target::Average,
        &train,
        &TrainOptions::fast(),
    );
    let acc = model.evaluate(&test);
    assert!(acc.mae.is_finite() && acc.mae >= 0.0);
    assert!(acc.medae <= acc.mae * 5.0 + 1.0);

    // Prediction phase on a fresh design without PAR.
    let unseen = compile_named(
        "int32 f(int32 a[8], int32 b[8]) { int32 s = 0; for (i = 0; i < 8; i++) { s = s + a[i] * b[i]; } return s; }",
        "unseen",
    )
    .unwrap();
    let design = flow.synthesize(&unseen).unwrap();
    let predictions = model.predict_design(&design, &flow.device);
    assert!(!predictions.is_empty());
    let regions = locate_congested(&design.module, &predictions);
    assert!(!regions.is_empty());
    // Regions are sorted by max congestion.
    for w in regions.windows(2) {
        assert!(w[0].max_congestion >= w[1].max_congestion);
    }
}

#[test]
fn labels_respond_to_design_size() {
    // A heavily parallel design must produce higher mean congestion labels
    // than a tiny serial one.
    let flow = fast_flow();
    let small = compile_named("int32 f(int32 x) { return x + 1; }", "small").unwrap();
    let big = compile_named(
        "int32 f(int32 a[128], int32 k) {\n#pragma HLS array_partition variable=a cyclic factor=16\nint32 s = 0;\n#pragma HLS unroll factor=16\nfor (i = 0; i < 128; i++) { s = s + a[i] * k; } return s; }",
        "big",
    )
    .unwrap();
    let mean = |m: &Module| {
        let ds = flow.build_dataset(std::slice::from_ref(m)).unwrap();
        ds.samples.iter().map(|s| s.average()).sum::<f64>() / ds.len().max(1) as f64
    };
    let small_mean = mean(&small);
    let big_mean = mean(&big);
    assert!(
        big_mean > small_mean,
        "parallel design should be more congested: {big_mean:.1} vs {small_mean:.1}"
    );
}

#[test]
fn suggestions_surface_for_congested_designs() {
    let flow = fast_flow();
    let bench =
        rosetta_gen::face_detection::benchmark(rosetta_gen::face_detection::FdVariant::Optimized);
    let module = bench.build().unwrap();
    let design = flow.synthesize(&module).unwrap();
    // Pretend everything is hot: the advisor must surface the case-study
    // fixes for this design's structure.
    let predictions: Vec<_> = design
        .module
        .functions
        .iter()
        .flat_map(|f| {
            f.ops
                .iter()
                .map(move |o| congestion_core::predict::OpPrediction {
                    func: f.id,
                    op: o.id,
                    line: o.loc.map(|l| l.line).unwrap_or(0),
                    predicted: 150.0,
                })
        })
        .collect();
    let suggestions = suggest_fixes(&design.module, &predictions, &ResolveOptions::default());
    assert!(
        suggestions.iter().any(
            |s| matches!(s, Suggestion::RemoveInline { function } if function == "fd_classifier")
        ),
        "advisor must find the inlined cascade: {suggestions:?}"
    );
    assert!(
        suggestions
            .iter()
            .any(|s| matches!(s, Suggestion::ReplicateArray { array, .. } if array == "win")),
        "advisor must find the shared window buffer: {suggestions:?}"
    );
}
